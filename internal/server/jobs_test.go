package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/seio"
)

// pollJob polls GET /jobs/{id} until the job leaves the running state or the
// deadline passes, returning the final status.
func pollJob(t *testing.T, c *http.Client, base, id string, deadline time.Duration) seio.JobStatusMsg {
	t.Helper()
	var st seio.JobStatusMsg
	stop := time.Now().Add(deadline)
	for {
		do(t, c, "GET", base+"/jobs/"+id, nil, http.StatusOK, &st)
		if st.Status != seio.JobRunning {
			return st
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s still running after %v: %+v", id, deadline, st.Counts)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobSweepMatchesSolve is the acceptance scenario: a sweep over
// {ALG, INC, HOR, HOR-I} × {k, 2k} must return per-cell utilities, schedules
// and counters bitwise-identical to synchronous /solve responses for the
// same instance version — and to running the algo package directly on the
// uploaded bytes.
func TestJobSweepMatchesSolve(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, Queue: 16})
	c := ts.Client()

	body := testInstanceJSON(t, 3, 50, 13)
	do(t, c, "PUT", ts.URL+"/instances/sweep", body, http.StatusCreated, nil)
	local, err := seio.ReadInstance(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}

	algos := []string{"ALG", "INC", "HOR", "HOR-I"}
	ks := []int{3, 6}

	// Synchronous baselines first, so the job's cache hits (if any) are
	// checked against independently computed responses.
	type cellKey struct {
		a string
		k int
	}
	solved := map[cellKey]seio.SolveResponse{}
	for _, a := range algos {
		for _, k := range ks {
			var resp seio.SolveResponse
			do(t, c, "POST", ts.URL+"/instances/sweep/solve",
				jsonBody(t, seio.SolveRequest{Algorithm: a, K: k}), http.StatusOK, &resp)
			solved[cellKey{a, k}] = resp
		}
	}

	var st seio.JobStatusMsg
	do(t, c, "POST", ts.URL+"/instances/sweep/jobs",
		jsonBody(t, seio.JobRequest{Algorithms: algos, Ks: ks}), http.StatusAccepted, &st)
	if st.ID == "" || len(st.Cells) != len(algos)*len(ks) {
		t.Fatalf("bad submit response: %+v", st)
	}
	st = pollJob(t, c, ts.URL, st.ID, 30*time.Second)
	if st.Status != seio.JobDone || st.Counts.Done != len(st.Cells) {
		t.Fatalf("job did not complete cleanly: status %s, counts %+v", st.Status, st.Counts)
	}

	for _, cell := range st.Cells {
		if cell.Result == nil {
			t.Fatalf("done cell %s k=%d has no result", cell.Algorithm, cell.K)
		}
		sync := solved[cellKey{cell.Algorithm, cell.K}]
		if cell.Result.Schedule.Utility != sync.Schedule.Utility {
			t.Errorf("%s k=%d: job utility %v != solve utility %v",
				cell.Algorithm, cell.K, cell.Result.Schedule.Utility, sync.Schedule.Utility)
		}
		if cell.Result.Instance.Version != sync.Instance.Version {
			t.Errorf("%s k=%d: job version %d != solve version %d",
				cell.Algorithm, cell.K, cell.Result.Instance.Version, sync.Instance.Version)
		}
		// Independent in-process check on the identical upload bytes.
		sched, err := algo.New(cell.Algorithm, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sched.Schedule(local, cell.K)
		if err != nil {
			t.Fatal(err)
		}
		if cell.Result.Schedule.Utility != want.Utility {
			t.Errorf("%s k=%d: job utility %v != in-process %v",
				cell.Algorithm, cell.K, cell.Result.Schedule.Utility, want.Utility)
		}
		for i, a := range cell.Result.Schedule.Assignments {
			wa := want.Schedule.Assignments()[i]
			if a.Event != wa.Event || a.Interval != wa.Interval {
				t.Errorf("%s k=%d: assignment %d drifted: e%d→t%d vs e%d→t%d",
					cell.Algorithm, cell.K, i, a.Event, a.Interval, wa.Event, wa.Interval)
			}
		}
	}

	// A mutation AFTER submit must not have leaked into the job: the job
	// pins the snapshot it was submitted against.
	stats := srv.Snapshot()
	if stats.Jobs.Submitted != 1 || stats.Jobs.CellsDone != int64(len(st.Cells)) {
		t.Errorf("job stats wrong: %+v", stats.Jobs)
	}
	var listing seio.JobListResponse
	do(t, c, "GET", ts.URL+"/jobs", nil, http.StatusOK, &listing)
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != st.ID {
		t.Errorf("bad job listing: %+v", listing)
	}

	// A late DELETE on a completed job is a no-op: the job must keep
	// reporting done, not get demoted to cancelled.
	do(t, c, "DELETE", ts.URL+"/jobs/"+st.ID, nil, http.StatusOK, &st)
	if st.Status != seio.JobDone || st.Counts.Done != len(st.Cells) {
		t.Errorf("DELETE demoted a finished job: status %q, counts %+v", st.Status, st.Counts)
	}
}

// TestJobCancellation pins the DELETE contract on a slow sweep: the running
// cell is cancelled mid-solve, queued cells retire immediately, and the job
// reports cancelled with no cell ever demoted from done.
func TestJobCancellation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 8})
	c := ts.Client()

	// A large user count makes each ALG cell take tens of milliseconds —
	// long enough that the DELETE lands mid-run.
	do(t, c, "PUT", ts.URL+"/instances/slow", testInstanceJSON(t, 12, 20000, 3), http.StatusCreated, nil)

	var st seio.JobStatusMsg
	do(t, c, "POST", ts.URL+"/instances/slow/jobs",
		jsonBody(t, seio.JobRequest{Algorithms: []string{"ALG"}, Ks: []int{12, 11, 10, 9}}),
		http.StatusAccepted, &st)

	// Wait until a cell is actually running, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for st.Counts.Running == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no cell started running: %+v", st.Counts)
		}
		do(t, c, "GET", ts.URL+"/jobs/"+st.ID, nil, http.StatusOK, &st)
	}
	var atCancel seio.JobStatusMsg
	do(t, c, "DELETE", ts.URL+"/jobs/"+st.ID, nil, http.StatusOK, &atCancel)
	if atCancel.Status == seio.JobDone {
		// The sweep won the race: every cell retired between the poll that
		// saw one running and the DELETE (engine/grid reuse makes later
		// cells very fast). Nothing was in flight to cancel; the
		// no-demotion contract is covered by TestJobSweepMatchesSolve.
		t.Logf("sweep finished before the cancel landed; counts %+v", atCancel.Counts)
		return
	}

	final := pollJob(t, c, ts.URL, st.ID, 10*time.Second)
	if final.Status != seio.JobCancelled {
		t.Fatalf("cancelled job reports status %q", final.Status)
	}
	if final.Counts.Cancelled == 0 {
		t.Fatal("cancellation retired no cells")
	}
	for i, cell := range final.Cells {
		// Cancellation is cooperative: a cell that was mid-run at DELETE may
		// legitimately finish "done" if no guard fired before its last
		// candidate. The hard contracts: a cell still PENDING at DELETE must
		// never start (it retires cancelled), and done cells stay done.
		if atCancel.Cells[i].State == seio.CellQueued && cell.State != seio.CellCancelled {
			t.Errorf("cell %d (%s k=%d) was queued at DELETE but finished %q",
				i, cell.Algorithm, cell.K, cell.State)
		}
		if atCancel.Cells[i].State == seio.CellDone && cell.State != seio.CellDone {
			t.Errorf("cell %d was done at DELETE but later reported %q", i, cell.State)
		}
	}

	// Cancelling again is a harmless no-op; the job stays pollable.
	do(t, c, "DELETE", ts.URL+"/jobs/"+st.ID, nil, http.StatusOK, &st)
	if st.Status != seio.JobCancelled {
		t.Errorf("re-cancel changed status to %q", st.Status)
	}
}

// TestJobsConcurrent hammers submit/poll/cancel from many goroutines while a
// writer keeps mutating the underlying instance, under -race. Invariants:
// cell states only move forward (a done cell is never re-reported as
// anything else), every job reaches a terminal state, and the pool drains
// cleanly on shutdown.
func TestJobsConcurrent(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 4, Queue: 32})
	c := ts.Client()
	do(t, c, "PUT", ts.URL+"/instances/x", testInstanceJSON(t, 4, 60, 17), http.StatusCreated, nil)

	terminal := func(s string) bool {
		return s == seio.CellDone || s == seio.CellFailed || s == seio.CellCancelled
	}

	const submitters = 4
	ids := make(chan string, submitters*4)
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				var st seio.JobStatusMsg
				do(t, c, "POST", ts.URL+"/instances/x/jobs",
					jsonBody(t, seio.JobRequest{Algorithms: []string{"ALG", "HOR"}, Ks: []int{3, 4}}),
					http.StatusAccepted, &st)
				ids <- st.ID

				// Poll a few times, asserting per-cell state monotonicity;
				// cancel every other job mid-flight.
				prev := map[int]string{}
				if (w+i)%2 == 0 {
					do(t, c, "DELETE", ts.URL+"/jobs/"+st.ID, nil, http.StatusOK, &st)
				}
				for p := 0; p < 10; p++ {
					do(t, c, "GET", ts.URL+"/jobs/"+st.ID, nil, http.StatusOK, &st)
					for ci, cell := range st.Cells {
						if was, ok := prev[ci]; ok && terminal(was) && cell.State != was {
							t.Errorf("job %s cell %d changed terminal state %q → %q", st.ID, ci, was, cell.State)
						}
						prev[ci] = cell.State
					}
					if st.Status != seio.JobRunning {
						break
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	// Concurrent writer: the store publishes new versions while jobs solve
	// their pinned snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			body := jsonBody(t, seio.MutateRequest{
				Activity: []seio.CellUpdate{{User: i % 60, Index: 0, Value: float64(i%10) / 10}},
			})
			req, err := http.NewRequest("PATCH", ts.URL+"/instances/x", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := c.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(ids)

	// Every job must reach a terminal state, and cancelled cells must have
	// no results attached.
	for id := range ids {
		st := pollJob(t, c, ts.URL, id, 30*time.Second)
		if st.Counts.Active() != 0 {
			t.Errorf("job %s terminal with active cells: %+v", id, st.Counts)
		}
		for ci, cell := range st.Cells {
			if cell.State == seio.CellCancelled && cell.Result != nil {
				t.Errorf("job %s cancelled cell %d carries a result", id, ci)
			}
			if cell.State == seio.CellDone && cell.Result == nil {
				t.Errorf("job %s done cell %d has no result", id, ci)
			}
		}
	}

	// Shutdown drains everything: no active workers, an empty queue, and
	// no dispatcher goroutines left (Close returns only after they exit).
	srv.Close()
	ps := srv.pool.Stats()
	if ps.Active != 0 || ps.QueueDepth != 0 {
		t.Errorf("pool did not drain on shutdown: %+v", ps)
	}
}

// TestJobValidation exercises every submit-time rejection.
func TestJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 4, MaxJobCells: 4})
	c := ts.Client()
	do(t, c, "PUT", ts.URL+"/instances/x", testInstanceJSON(t, 3, 20, 5), http.StatusCreated, nil)

	for name, tc := range map[string]struct {
		body []byte
		code int
		url  string
	}{
		"no ks":            {jsonBody(t, seio.JobRequest{}), http.StatusBadRequest, "/instances/x/jobs"},
		"bad k":            {jsonBody(t, seio.JobRequest{Ks: []int{0}}), http.StatusBadRequest, "/instances/x/jobs"},
		"bad algorithm":    {jsonBody(t, seio.JobRequest{Algorithms: []string{"NOPE"}, Ks: []int{2}}), http.StatusBadRequest, "/instances/x/jobs"},
		"grid too big":     {jsonBody(t, seio.JobRequest{Ks: []int{1, 2}}), http.StatusBadRequest, "/instances/x/jobs"},
		"bad weights":      {jsonBody(t, seio.JobRequest{Ks: []int{2}, UserWeights: []float64{1}}), http.StatusBadRequest, "/instances/x/jobs"},
		"unknown instance": {jsonBody(t, seio.JobRequest{Ks: []int{2}}), http.StatusNotFound, "/instances/none/jobs"},
		"garbage":          {[]byte("{"), http.StatusBadRequest, "/instances/x/jobs"},
	} {
		var e seio.ErrorResponse
		do(t, c, "POST", ts.URL+tc.url, tc.body, tc.code, &e)
		if e.Error == "" {
			t.Errorf("%s: empty error body", name)
		}
	}

	do(t, c, "GET", ts.URL+"/jobs/job-999", nil, http.StatusNotFound, nil)
	do(t, c, "DELETE", ts.URL+"/jobs/job-999", nil, http.StatusNotFound, nil)
}

// TestJobTTL pins the retention contract: finished jobs expire after the
// configured TTL and vanish from lookups, listings and stats.
func TestJobTTL(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, Queue: 4, JobTTL: 30 * time.Millisecond})
	c := ts.Client()
	do(t, c, "PUT", ts.URL+"/instances/x", testInstanceJSON(t, 3, 20, 5), http.StatusCreated, nil)

	var st seio.JobStatusMsg
	do(t, c, "POST", ts.URL+"/instances/x/jobs",
		jsonBody(t, seio.JobRequest{Algorithms: []string{"HOR"}, Ks: []int{2}}), http.StatusAccepted, &st)
	st = pollJob(t, c, ts.URL, st.ID, 10*time.Second)
	if st.Status != seio.JobDone {
		t.Fatalf("job finished %q", st.Status)
	}

	// Within the TTL the job stays pollable.
	do(t, c, "GET", ts.URL+"/jobs/"+st.ID, nil, http.StatusOK, nil)
	time.Sleep(60 * time.Millisecond)
	do(t, c, "GET", ts.URL+"/jobs/"+st.ID, nil, http.StatusNotFound, nil)
	if n := srv.jobs.Stats().Jobs; n != 0 {
		t.Errorf("%d jobs retained after TTL", n)
	}
}

func ExampleServer_jobs() {
	s, err := New(Config{Workers: 1, Queue: 4})
	if err != nil {
		panic(err)
	}
	defer s.Close()
	fmt.Println(len(s.jobs.List()))
	// Output: 0
}
