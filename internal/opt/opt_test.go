package opt

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hardness"
)

func TestSolveRunningExample(t *testing.T) {
	inst := core.RunningExample()
	res, err := Solve(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.CheckFeasible(); err != nil {
		t.Fatal(err)
	}
	// A pleasing side-result: greedy is NOT optimal on the paper's own
	// running example. ALG/INC reach Ω = 1.4073 with {e4@t2, e1@t1, e2@t2}
	// (Figure 2), but stacking e1 and e4 together in t1 and giving e2 sole
	// use of t2 yields Ω = 1.4281.
	ra, err := algo.ALG{}.Schedule(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utility < ra.Utility-1e-9 {
		t.Fatalf("optimum %v below greedy %v", res.Utility, ra.Utility)
	}
	if math.Abs(res.Utility-1.428149) > 5e-4 {
		t.Errorf("optimum = %.6f, want 1.428149", res.Utility)
	}
	if math.Abs(ra.Utility-1.407302) > 5e-4 {
		t.Errorf("greedy = %.6f, want 1.407302", ra.Utility)
	}
}

func TestSolveValidation(t *testing.T) {
	inst := core.RunningExample()
	if _, err := Solve(inst, 0); err == nil {
		t.Error("k=0 accepted")
	}
	big, err := dataset.Generate(dataset.DefaultConfig(20, 10, dataset.Uniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(big, 5); err == nil {
		t.Error("oversized instance accepted")
	}
}

// The exact optimum dominates every heuristic on random small instances,
// and greedy stays within a reasonable factor (SES's greedy has no formal
// guarantee, but on these instances it should stay close).
func TestOptimumDominatesHeuristics(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		inst := tinyInstance(t, seed)
		res, err := Solve(inst, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"ALG", "INC", "HOR", "HOR-I", "TOP", "RAND"} {
			s, _ := algo.New(name, seed)
			h, err := s.Schedule(inst, 3)
			if err != nil {
				t.Fatal(err)
			}
			if h.Utility > res.Utility+1e-9 {
				t.Fatalf("seed %d: %s utility %v beats the exact optimum %v", seed, name, h.Utility, res.Utility)
			}
		}
		ra, _ := algo.ALG{}.Schedule(inst, 3)
		if ra.Utility < 0.5*res.Utility {
			t.Errorf("seed %d: greedy %v below half the optimum %v", seed, ra.Utility, res.Utility)
		}
	}
}

func tinyInstance(t *testing.T, seed uint64) *core.Instance {
	t.Helper()
	cfg := dataset.DefaultConfig(2, 20, dataset.Zipf2, seed)
	cfg.NumEvents = 6
	cfg.NumIntervals = 3
	cfg.NumLocations = 3
	inst, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// The hardness reduction's intended optimum: on a 3DM-3 instance with a
// perfect matching, the exact SES optimum equals the matching utility
// 3n(0.25+δ) + (m−n) — certifying that no schedule beats the construction.
func TestReductionOptimumIsMatchingUtility(t *testing.T) {
	p := hardness.PerfectInstance(2, []hardness.Triple{{X: 0, Y: 1, Z: 1}})
	red, err := hardness.Reduce(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(red.Inst, red.K)
	if err != nil {
		t.Fatal(err)
	}
	want := red.MatchingUtility(2)
	if math.Abs(res.Utility-want) > 1e-6 {
		t.Errorf("exact optimum %v, matching utility %v", res.Utility, want)
	}
}

// UnassignLast stack discipline: a full backtracking pass leaves the
// schedule empty and byte-identical in behaviour to a fresh one.
func TestBacktrackingRestoresState(t *testing.T) {
	inst := tinyInstance(t, 3)
	sc := core.NewScorer(inst)
	s := core.NewSchedule(inst)
	before := make([]float64, 0)
	for e := 0; e < inst.NumEvents(); e++ {
		before = append(before, sc.Score(s, e, 0))
	}
	// Push and pop a few assignments.
	pushed := 0
	for e := 0; e < inst.NumEvents() && pushed < 3; e++ {
		if s.Valid(e, 0) {
			if err := s.Assign(e, 0); err != nil {
				t.Fatal(err)
			}
			pushed++
		}
	}
	for i := 0; i < pushed; i++ {
		if err := s.UnassignLast(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("schedule not empty after full undo: %d", s.Len())
	}
	for e := 0; e < inst.NumEvents(); e++ {
		if got := sc.Score(s, e, 0); math.Abs(got-before[e]) > 1e-12 {
			t.Fatalf("score(e%d,t0) drifted after undo: %v vs %v", e, got, before[e])
		}
	}
	if err := s.UnassignLast(); err == nil {
		t.Error("UnassignLast on empty schedule accepted")
	}
}
