// Package opt computes exact optima of small SES instances by exhaustive
// search. SES is strongly NP-hard (Theorem 1), so this only scales to toy
// sizes — which is precisely its purpose: measuring the empirical
// approximation quality of the greedy algorithms against the true optimum,
// and certifying the hardness reduction's intended optimum, neither of which
// the paper could do at evaluation scale.
package opt

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
)

// MaxSearchSpace caps |E|·|T| choose k-ish exploration; Solve refuses
// instances whose (loose) upper bound on explored nodes exceeds it, so a
// mistaken call cannot hang a test suite.
const MaxSearchSpace = 50_000_000

// Result is an exact optimum.
type Result struct {
	Schedule *core.Schedule
	Utility  float64
	// Explored counts search nodes, for tests and curiosity.
	Explored int64
}

// Solve finds a feasible schedule of at most k assignments maximizing Ω by
// branch-and-bound over events in index order. Each event is either skipped
// or assigned to one feasible interval; the bound prunes branches whose
// optimistic completion (every remaining event counted with its
// empty-schedule score) cannot beat the incumbent.
func Solve(inst *core.Instance, k int) (*Result, error) {
	if k <= 0 {
		return nil, errors.New("opt: k must be positive")
	}
	nE, nT := inst.NumEvents(), inst.NumIntervals()
	// Loose size guard: (nT+1)^min(nE, budget-ish).
	if pow := math.Pow(float64(nT+1), float64(nE)); pow > MaxSearchSpace {
		return nil, fmt.Errorf("opt: search space (|T|+1)^|E| = %.0f exceeds %d; use a smaller instance", pow, MaxSearchSpace)
	}
	sc := core.NewScorer(inst)

	// Optimistic per-event bound: the best empty-schedule score across
	// intervals. Adding events never increases any score (monotonicity),
	// so the sum of the top remaining bounds is admissible.
	empty := core.NewSchedule(inst)
	bestAlone := make([]float64, nE)
	for e := 0; e < nE; e++ {
		for t := 0; t < nT; t++ {
			if empty.Valid(e, t) {
				if s := sc.Score(empty, e, t); s > bestAlone[e] {
					bestAlone[e] = s
				}
			}
		}
	}
	// suffixTop[i][c] = sum of the c largest bestAlone values among events
	// ≥ i; computing it exactly would cost sorting per suffix, so use the
	// simpler admissible bound: sum of ALL remaining bounds capped at the
	// c largest overall... keep it simple and admissible: suffixSum[i] =
	// Σ_{e≥i} bestAlone[e] (valid since c ≤ remaining).
	suffixSum := make([]float64, nE+1)
	for e := nE - 1; e >= 0; e-- {
		suffixSum[e] = suffixSum[e+1] + bestAlone[e]
	}

	res := &Result{Utility: -1}
	s := core.NewSchedule(inst)
	var rec func(e, left int, utility float64)
	rec = func(e, left int, utility float64) {
		res.Explored++
		if utility > res.Utility {
			res.Utility = utility
			res.Schedule = s.Clone()
		}
		if e == nE || left == 0 {
			return
		}
		if utility+suffixSum[e] <= res.Utility+1e-12 {
			return // bound: even the optimistic completion cannot win
		}
		// Try each interval for event e.
		for t := 0; t < nT; t++ {
			if !s.Valid(e, t) {
				continue
			}
			gain := sc.Score(s, e, t)
			if err := s.Assign(e, t); err != nil {
				panic("opt: assign after Valid: " + err.Error())
			}
			rec(e+1, left-1, utility+gain)
			if err := s.UnassignLast(); err != nil {
				panic("opt: " + err.Error())
			}
		}
		// Or skip event e.
		rec(e+1, left, utility)
	}
	rec(0, k, 0)
	if res.Schedule == nil {
		res.Schedule = core.NewSchedule(inst)
		res.Utility = 0
	}
	return res, nil
}
