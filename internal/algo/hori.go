package algo

import (
	"context"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/score"
)

// HORI is the Horizontal Assignment with Incremental Updating algorithm
// HOR-I (Section 3.4, Algorithm 3). It keeps HOR's layer-at-a-time
// horizontal selection policy but replaces HOR's full per-layer score
// recomputation with a per-interval incremental pass guarded by a
// per-interval bound Φ: iterating an interval's list in descending stored
// score, each stale entry is recomputed only while its stored score (an
// upper bound) reaches the running Φ; once one entry falls below Φ, every
// later entry must too, and the interval's true top is already known.
//
// HOR-I returns exactly HOR's schedule (Proposition 6) and is identical to
// HOR when k ≤ |T| (a single layer needs no updates).
type HORI struct {
	// Opts enables the Section 2.1 problem extensions.
	Opts core.ScorerOptions
	// Engine, when set, is the shared scoring engine to use; otherwise a
	// private engine is built from Opts for the run.
	Engine *score.Engine
}

// Name implements Scheduler.
func (HORI) Name() string { return "HOR-I" }

type horiState struct {
	inst  *core.Instance
	en    *score.Engine
	s     *core.Schedule
	lists [][]item
	// dirty[t] marks interval t as possibly holding stale entries;
	// clean intervals are skipped by the per-layer update sweep.
	dirty []bool
	g     *guard
	c     Counters
}

// Schedule implements Scheduler.
func (a HORI) Schedule(inst *core.Instance, k int) (*Result, error) {
	return a.ScheduleCtx(context.Background(), inst, k)
}

// ScheduleCtx implements Scheduler.
func (a HORI) ScheduleCtx(ctx context.Context, inst *core.Instance, k int) (*Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	g := newGuard(ctx, k)
	if err := g.point(); err != nil {
		return nil, err
	}
	start := time.Now()
	en, release, err := engineFor(a.Engine, inst, a.Opts)
	if err != nil {
		return nil, err
	}
	defer release()
	st := &horiState{
		inst:  inst,
		en:    en,
		s:     core.NewSchedule(inst),
		lists: make([][]item, inst.NumIntervals()),
		dirty: make([]bool, inst.NumIntervals()),
		g:     g,
	}
	nE, nT := inst.NumEvents(), inst.NumIntervals()

	// First layer: generate and score everything, like HOR
	// (Algorithm 3, lines 3-7) — the full frontier in one batch fan-out.
	cands := make([]score.Candidate, 0, nE*nT)
	starts := make([]int, nT+1)
	for t := 0; t < nT; t++ {
		starts[t] = len(cands)
		for e := 0; e < nE; e++ {
			if !st.s.Valid(e, t) {
				continue
			}
			cands = append(cands, score.Candidate{Event: e, Interval: t})
		}
	}
	starts[nT] = len(cands)
	vals := make([]float64, len(cands))
	if err := en.ScoreBatch(g.ctx, st.s, cands, vals); err != nil {
		return nil, err
	}
	st.c.ScoreEvals += int64(len(cands))
	if err := g.batch(len(cands)); err != nil {
		return nil, err
	}
	for t := 0; t < nT; t++ {
		items := make([]item, 0, starts[t+1]-starts[t])
		for i := starts[t]; i < starts[t+1]; i++ {
			items = append(items, item{e: int32(cands[i].Event), score: vals[i], updated: true})
		}
		sortItems(items)
		st.lists[t] = items
	}
	for st.s.Len() < k {
		made, err := st.selectLayer(k)
		if err != nil {
			return nil, err
		}
		if made == 0 {
			break
		}
		if st.s.Len() >= k {
			break
		}
		// Next layer: incremental per-interval updates
		// (Algorithm 3, lines 8-20). Intervals with no stale entries
		// are skipped outright.
		for t := 0; t < nT; t++ {
			if st.dirty[t] {
				if err := st.updateIntervalPass(t); err != nil {
					return nil, err
				}
			}
		}
	}
	return finish(st.en, st.s, st.c, start), nil
}

// markStale flags every entry of interval t's list stale; called when t
// receives an assignment and its denominators change.
func (st *horiState) markStale(t int) {
	for i := range st.lists[t] {
		st.lists[t][i].updated = false
	}
	st.dirty[t] = len(st.lists[t]) > 0
}

// updateIntervalPass runs the incremental update of one interval
// (Algorithm 3, lines 10-19): iterate the list in stored-score order,
// pruning invalid entries; recompute stale entries while their stored score
// reaches the interval bound Φ; leave the rest stale (their true scores are
// below Φ). The list is re-sorted afterwards so its head is the interval's
// exact top. The pass polls the run's context between recomputations.
func (st *horiState) updateIntervalPass(t int) error {
	items := st.lists[t]
	out := items[:0]
	// The first valid stale entry must always update, so Φ starts below
	// any representable score (scores can be negative in the
	// profit-oriented variant).
	phi := math.Inf(-1)
	stopped := false
	staleLeft := false
	for idx, it := range items {
		if stopped {
			// Everything below the cutoff stays stale and untouched;
			// bulk-copy without examining.
			out = append(out, items[idx:]...)
			break
		}
		st.c.Examined++
		if !st.s.Valid(int(it.e), t) {
			continue // prune
		}
		if it.updated {
			out = append(out, it)
			continue
		}
		if it.score >= phi {
			// Each recomputation feeds Φ, which decides whether the next
			// entry is recomputed at all — a sequential dependency, so this
			// pass uses the engine's single-evaluation path (which still
			// shards the user pass itself on large instances).
			it.score = st.en.Score(st.s, int(it.e), t)
			it.updated = true
			st.c.ScoreEvals++
			if err := st.g.step(); err != nil {
				return err
			}
			if it.score > phi {
				phi = it.score
			}
			out = append(out, it)
			continue
		}
		// Stored score below Φ: this and all later entries keep their
		// stale upper bounds (Algorithm 3, line 17).
		out = append(out, it)
		stopped = true
		staleLeft = true
	}
	sortItems(out)
	st.lists[t] = out
	st.dirty[t] = staleLeft
	return nil
}

// selectLayer performs one horizontal selection layer over the persistent
// lists (Algorithm 3, lines 21-30). It mirrors HOR's layer loop with one
// extra rule: an interval's candidate may be consumed only if it is updated;
// when the interval's head is stale, the interval is incrementally updated
// first, which restores the exactness of its top and preserves the HOR
// equivalence. Returns the number of assignments made.
func (st *horiState) selectLayer(k int) (int, error) {
	nT := len(st.lists)
	done := make([]bool, nT) // interval already assigned this layer (or exhausted)
	made := 0
	for st.s.Len() < k {
		bestT := -1
		var bestIt item
		for t := 0; t < nT; t++ {
			if done[t] {
				continue
			}
			it, ok, err := st.head(t)
			if err != nil {
				return made, err
			}
			if !ok {
				done[t] = true
				continue
			}
			if bestT < 0 || betterFull(it.score, it.e, t, bestIt.score, bestIt.e, bestT) {
				bestT, bestIt = t, it
			}
		}
		if bestT < 0 {
			break
		}
		st.c.Examined++
		if err := st.s.Assign(int(bestIt.e), bestT); err != nil {
			panic("algo: HOR-I layer assignment failed: " + err.Error())
		}
		st.markStale(bestT)
		done[bestT] = true
		made++
		if err := st.g.selected(st.s.Len()); err != nil {
			return made, err
		}
	}
	return made, nil
}

// head returns interval t's exact top candidate: the first list entry after
// pruning invalid ones, incrementally updating the interval when the head is
// stale. ok is false when the interval has no valid entries left.
func (st *horiState) head(t int) (it item, ok bool, err error) {
	for {
		items := st.lists[t]
		// Prune invalid entries off the head.
		i := 0
		for i < len(items) {
			st.c.Examined++
			if st.s.Valid(int(items[i].e), t) {
				break
			}
			i++
		}
		if i > 0 {
			items = items[i:]
			st.lists[t] = items
		}
		if len(items) == 0 {
			return item{}, false, nil
		}
		if items[0].updated {
			return items[0], true, nil
		}
		// Head is stale: its stored upper bound may hide a lower true
		// score, so run the interval's incremental pass before trusting
		// the head (this is Algorithm 3's lines 27-30 fallback, applied
		// eagerly to guarantee Proposition 6).
		if err := st.updateIntervalPass(t); err != nil {
			return item{}, false, err
		}
	}
}
