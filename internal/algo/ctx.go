package algo

import "context"

// Progress receives scheduling progress: the number of selections made so
// far out of the k requested. Callbacks run synchronously inside the
// selection loop, so they must be fast; cancelling the run's context from
// inside a callback is the supported way to stop a sweep cell early.
type Progress func(made, k int)

// progressKey carries a Progress callback through a context.
type progressKey struct{}

// WithProgress returns a context carrying fn; ScheduleCtx invokes fn after
// every selection it makes. A nil fn is ignored.
func WithProgress(ctx context.Context, fn Progress) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, fn)
}

// checkEvery amortizes context polling inside tight scoring loops: one
// ctx.Err() per checkEvery score computations keeps the cancellation latency
// bounded by checkEvery × O(|U|) work while costing nothing measurable.
const checkEvery = 32

// guard bundles the cancellation and progress plumbing of one ScheduleCtx
// run, so the six schedulers share identical semantics.
type guard struct {
	ctx      context.Context
	progress Progress
	k        int
	n        uint
}

func newGuard(ctx context.Context, k int) *guard {
	g := &guard{ctx: ctx, k: k}
	if fn, ok := ctx.Value(progressKey{}).(Progress); ok {
		g.progress = fn
	}
	return g
}

// point polls the context immediately. Use at run start and loop heads.
func (g *guard) point() error { return g.ctx.Err() }

// step is the amortized check for scoring/scan loops: every checkEvery-th
// call polls the context.
func (g *guard) step() error {
	g.n++
	if g.n%checkEvery == 0 {
		return g.ctx.Err()
	}
	return nil
}

// batch accounts n score evaluations performed by one engine fan-out
// (score.Engine.ScoreBatch polls the context itself while it runs) and polls
// the context once more, preserving step's cadence for the loops that follow.
func (g *guard) batch(n int) error {
	g.n += uint(n)
	return g.ctx.Err()
}

// selected reports one completed selection and polls the context, so a
// cancellation raised by the callback itself is honored before any further
// work starts.
func (g *guard) selected(made int) error {
	if g.progress != nil {
		g.progress(made, g.k)
	}
	return g.ctx.Err()
}
