// Package algo implements the scheduling algorithms of the paper: the prior
// greedy ALG (Section 3.1, from Bikakis et al. ICDE 2018), the three
// contributions INC (Section 3.2), HOR (Section 3.3) and HOR-I (Section 3.4),
// and the TOP and RAND baselines of the evaluation (Section 4.1).
//
// Every scheduler is instrumented with the two counters the paper's
// evaluation reports besides wall time: the number of assignment-score
// computations (each costing one pass over the |U| users — Figures 5e–5h)
// and the number of assignments examined (Figure 10b).
package algo

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/score"
)

// Counters collects the work metrics of a scheduler run.
type Counters struct {
	// ScoreEvals counts Eq. 4 evaluations. The paper's "number of
	// computations" metric is ScoreEvals × |U| (each evaluation touches
	// every user once); use Computations for that figure-ready value.
	ScoreEvals int64
	// Examined counts assignment accesses: list entries traversed,
	// score-matrix cells scanned for selection, and candidates checked
	// for validity. This is the Figure 10b "search space" metric.
	Examined int64
}

// Computations returns the paper's computation count: ScoreEvals × |U|.
func (c Counters) Computations(numUsers int) int64 {
	return c.ScoreEvals * int64(numUsers)
}

// Result is the outcome of a scheduler run.
type Result struct {
	Schedule *core.Schedule
	// Utility is Ω(Schedule), recomputed from scratch by the scorer so
	// the reported value never depends on an algorithm's bookkeeping.
	Utility float64
	Counters
	Elapsed time.Duration
}

// Scheduler solves an SES instance: it selects up to k valid assignments
// maximizing (approximately) the total utility Ω.
type Scheduler interface {
	// Name returns the paper's name for the algorithm (ALG, INC, ...).
	Name() string
	// Schedule builds a feasible schedule with at most k assignments.
	// Fewer than k assignments are returned only when no further valid
	// assignment exists. It is ScheduleCtx with a background context.
	Schedule(inst *core.Instance, k int) (*Result, error)
	// ScheduleCtx is Schedule with cooperative cancellation: the selection
	// and scoring loops poll ctx periodically and abandon the run with
	// ctx.Err() once it is cancelled, so a long solve never holds a worker
	// past its caller's interest. A Progress callback attached to ctx via
	// WithProgress is invoked after every selection.
	ScheduleCtx(ctx context.Context, inst *core.Instance, k int) (*Result, error)
}

// ErrBadK is returned when k is not positive.
var ErrBadK = errors.New("algo: k must be positive")

// New returns the scheduler with the given paper name (case-sensitive:
// "ALG", "INC", "HOR", "HOR-I", "TOP", "RAND"). RAND is seeded with seed;
// the deterministic algorithms ignore it.
func New(name string, seed uint64) (Scheduler, error) {
	return NewWithOptions(name, seed, core.ScorerOptions{})
}

// NewWithOptions returns the named scheduler with the Section 2.1 problem
// extensions enabled (user weights, profit-oriented event costs) and, via
// opts.Workers, parallel scoring.
func NewWithOptions(name string, seed uint64, opts core.ScorerOptions) (Scheduler, error) {
	switch name {
	case "ALG":
		return ALG{Opts: opts}, nil
	case "INC":
		return INC{Opts: opts}, nil
	case "HOR":
		return HOR{Opts: opts}, nil
	case "HOR-I":
		return HORI{Opts: opts}, nil
	case "TOP":
		return TOP{Opts: opts}, nil
	case "RAND":
		return RAND{Seed: seed, Opts: opts}, nil
	}
	return nil, fmt.Errorf("algo: unknown scheduler %q", name)
}

// NewWithEngine returns the named scheduler bound to a shared scoring engine.
// The engine pins the instance: ScheduleCtx fails if called with any other.
// Sharing an engine amortizes its O(|U|·|C|) precompute and worker set across
// runs — sesd binds one engine per instance version to every solve and sweep
// cell of that version.
func NewWithEngine(name string, seed uint64, en *score.Engine) (Scheduler, error) {
	s, err := New(name, seed)
	if err != nil {
		return nil, err
	}
	return WithEngine(s, en), nil
}

// WithEngine rebinds one of the built-in schedulers to a shared engine.
// Schedulers of unknown concrete types are returned unchanged.
func WithEngine(s Scheduler, en *score.Engine) Scheduler {
	switch v := s.(type) {
	case ALG:
		v.Engine = en
		return v
	case INC:
		v.Engine = en
		return v
	case HOR:
		v.Engine = en
		return v
	case HORI:
		v.Engine = en
		return v
	case TOP:
		v.Engine = en
		return v
	case RAND:
		v.Engine = en
		return v
	}
	return s
}

// engineFor resolves the engine a run scores with: the scheduler's shared
// Engine when set (validated against inst), otherwise a private engine built
// from opts whose workers the returned release func stops when the run ends.
func engineFor(shared *score.Engine, inst *core.Instance, opts core.ScorerOptions) (*score.Engine, func(), error) {
	if shared != nil {
		if shared.Instance() != inst {
			return nil, nil, errors.New("algo: scoring engine was built for a different instance")
		}
		return shared, func() {}, nil
	}
	en, err := score.New(inst, opts)
	if err != nil {
		return nil, nil, err
	}
	return en, en.Close, nil
}

// Names lists the available scheduler names in the order the paper's plots
// use.
func Names() []string { return []string{"ALG", "INC", "HOR", "HOR-I", "TOP", "RAND"} }

// betterScoreEvent reports whether (s1, e1) beats (s2, e2) under the shared
// deterministic tie-break: higher score first, then smaller event index.
// Every algorithm uses this ordering so the INC ≡ ALG and HOR-I ≡ HOR
// equivalences (Propositions 3 and 6) hold exactly, not just in utility.
func betterScoreEvent(s1 float64, e1 int32, s2 float64, e2 int32) bool {
	if s1 != s2 {
		return s1 > s2
	}
	return e1 < e2
}

// betterFull extends betterScoreEvent with the interval index as the final
// tie-break for cross-interval comparisons.
func betterFull(s1 float64, e1 int32, t1 int, s2 float64, e2 int32, t2 int) bool {
	if s1 != s2 {
		return s1 > s2
	}
	if e1 != e2 {
		return e1 < e2
	}
	return t1 < t2
}

// item is one assignment α_e^t inside an interval's assignment list L_t.
// The interval is implied by the list holding the item.
type item struct {
	e int32
	// score is the exact Eq. 4 score if updated, otherwise a stale value
	// from an earlier schedule state. Stale scores are upper bounds on
	// the exact score (the monotonicity behind Proposition 1).
	score   float64
	updated bool
}

// sortItems orders a list descending by score with the event index as the
// tie-break, the canonical order of the interval-based assignment
// organization (Section 3.2.2).
func sortItems(items []item) {
	sort.Slice(items, func(i, j int) bool {
		return betterScoreEvent(items[i].score, items[i].e, items[j].score, items[j].e)
	})
}

// finish assembles the Result shared by all schedulers.
func finish(en *score.Engine, s *core.Schedule, c Counters, start time.Time) *Result {
	return &Result{
		Schedule: s,
		Utility:  en.Utility(s),
		Counters: c,
		Elapsed:  time.Since(start),
	}
}
