package algo

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/score"
)

// ALG is the greedy algorithm of Bikakis et al. (ICDE 2018), outlined in
// Section 3.1 of the paper, and the comparison baseline for INC/HOR/HOR-I.
//
// ALG first scores every (event, interval) pair, then repeats k times:
// scan all available assignments for the top valid one, select it, and
// recompute from scratch the scores of every assignment bound to the
// selected assignment's interval. Complexity (paper):
// O(|U||C| + |E||T||U| + k|E||T| + k|E||U| − k²|T| − k²|U|).
//
// Both scoring phases are independent candidate frontiers — the initial
// |E|×|T| grid and each selection's interval-column recompute — so each runs
// as one engine batch fan-out.
type ALG struct {
	// Opts enables the Section 2.1 problem extensions.
	Opts core.ScorerOptions
	// Engine, when set, is the shared scoring engine to use (its instance
	// must be the one scheduled); otherwise a private engine is built from
	// Opts for the run.
	Engine *score.Engine
}

// Name implements Scheduler.
func (ALG) Name() string { return "ALG" }

// Schedule implements Scheduler.
func (a ALG) Schedule(inst *core.Instance, k int) (*Result, error) {
	return a.ScheduleCtx(context.Background(), inst, k)
}

// ScheduleCtx implements Scheduler.
func (a ALG) ScheduleCtx(ctx context.Context, inst *core.Instance, k int) (*Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	g := newGuard(ctx, k)
	if err := g.point(); err != nil {
		return nil, err
	}
	start := time.Now()
	en, release, err := engineFor(a.Engine, inst, a.Opts)
	if err != nil {
		return nil, err
	}
	defer release()
	s := core.NewSchedule(inst)
	var c Counters

	nE, nT := inst.NumEvents(), inst.NumIntervals()
	// Initial frontier: every (event, interval) pair, scored in one batch.
	// The candidate order matches the score matrix layout, so the batch
	// writes the matrix directly.
	scores := make([]float64, nE*nT)
	cands := make([]score.Candidate, 0, nE*nT)
	for e := 0; e < nE; e++ {
		for t := 0; t < nT; t++ {
			cands = append(cands, score.Candidate{Event: e, Interval: t})
		}
	}
	if err := en.ScoreBatch(g.ctx, s, cands, scores); err != nil {
		return nil, err
	}
	c.ScoreEvals += int64(len(cands))
	if err := g.batch(len(cands)); err != nil {
		return nil, err
	}

	updVals := make([]float64, nE)
	for s.Len() < k {
		if err := g.point(); err != nil {
			return nil, err
		}
		// Select: scan every available assignment for the top valid one.
		bestE, bestT := int32(-1), -1
		bestScore := 0.0
		for e := 0; e < nE; e++ {
			if _, assigned := s.AssignedInterval(e); assigned {
				continue
			}
			for t := 0; t < nT; t++ {
				c.Examined++
				if !s.Feasible(e, t) {
					continue
				}
				sv := scores[e*nT+t]
				if bestE < 0 || betterFull(sv, int32(e), t, bestScore, bestE, bestT) {
					bestE, bestT, bestScore = int32(e), t, sv
				}
			}
		}
		if bestE < 0 {
			break // no valid assignment remains
		}
		if err := s.Assign(int(bestE), bestT); err != nil {
			return nil, err
		}
		if err := g.selected(s.Len()); err != nil {
			return nil, err
		}
		if s.Len() >= k {
			break // no selection follows, so no update is needed
		}
		// Update: recompute every available assignment of the selected
		// interval against the new schedule state — one batch over the
		// interval column.
		upd := cands[:0]
		for e := 0; e < nE; e++ {
			if _, assigned := s.AssignedInterval(e); assigned {
				continue
			}
			c.Examined++
			if !s.Feasible(e, bestT) {
				continue
			}
			upd = append(upd, score.Candidate{Event: e, Interval: bestT})
		}
		if err := en.ScoreBatch(g.ctx, s, upd, updVals); err != nil {
			return nil, err
		}
		for i, cd := range upd {
			scores[cd.Event*nT+bestT] = updVals[i]
		}
		c.ScoreEvals += int64(len(upd))
		if err := g.batch(len(upd)); err != nil {
			return nil, err
		}
	}
	return finish(en, s, c, start), nil
}
