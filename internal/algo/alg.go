package algo

import (
	"context"
	"time"

	"repro/internal/core"
)

// ALG is the greedy algorithm of Bikakis et al. (ICDE 2018), outlined in
// Section 3.1 of the paper, and the comparison baseline for INC/HOR/HOR-I.
//
// ALG first scores every (event, interval) pair, then repeats k times:
// scan all available assignments for the top valid one, select it, and
// recompute from scratch the scores of every assignment bound to the
// selected assignment's interval. Complexity (paper):
// O(|U||C| + |E||T||U| + k|E||T| + k|E||U| − k²|T| − k²|U|).
type ALG struct {
	// Opts enables the Section 2.1 problem extensions.
	Opts core.ScorerOptions
}

// Name implements Scheduler.
func (ALG) Name() string { return "ALG" }

// Schedule implements Scheduler.
func (a ALG) Schedule(inst *core.Instance, k int) (*Result, error) {
	return a.ScheduleCtx(context.Background(), inst, k)
}

// ScheduleCtx implements Scheduler.
func (a ALG) ScheduleCtx(ctx context.Context, inst *core.Instance, k int) (*Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	g := newGuard(ctx, k)
	if err := g.point(); err != nil {
		return nil, err
	}
	start := time.Now()
	sc, err := core.NewScorerWithOptions(inst, a.Opts)
	if err != nil {
		return nil, err
	}
	s := core.NewSchedule(inst)
	var c Counters

	nE, nT := inst.NumEvents(), inst.NumIntervals()
	scores := make([]float64, nE*nT)
	for e := 0; e < nE; e++ {
		for t := 0; t < nT; t++ {
			scores[e*nT+t] = sc.Score(s, e, t)
			c.ScoreEvals++
			if err := g.step(); err != nil {
				return nil, err
			}
		}
	}

	for s.Len() < k {
		if err := g.point(); err != nil {
			return nil, err
		}
		// Select: scan every available assignment for the top valid one.
		bestE, bestT := int32(-1), -1
		bestScore := 0.0
		for e := 0; e < nE; e++ {
			if _, assigned := s.AssignedInterval(e); assigned {
				continue
			}
			for t := 0; t < nT; t++ {
				c.Examined++
				if !s.Feasible(e, t) {
					continue
				}
				sv := scores[e*nT+t]
				if bestE < 0 || betterFull(sv, int32(e), t, bestScore, bestE, bestT) {
					bestE, bestT, bestScore = int32(e), t, sv
				}
			}
		}
		if bestE < 0 {
			break // no valid assignment remains
		}
		if err := s.Assign(int(bestE), bestT); err != nil {
			return nil, err
		}
		if err := g.selected(s.Len()); err != nil {
			return nil, err
		}
		if s.Len() >= k {
			break // no selection follows, so no update is needed
		}
		// Update: recompute every available assignment of the selected
		// interval against the new schedule state.
		for e := 0; e < nE; e++ {
			if _, assigned := s.AssignedInterval(e); assigned {
				continue
			}
			c.Examined++
			if !s.Feasible(e, bestT) {
				continue
			}
			scores[e*nT+bestT] = sc.Score(s, e, bestT)
			c.ScoreEvals++
			if err := g.step(); err != nil {
				return nil, err
			}
		}
	}
	return finish(sc, s, c, start), nil
}
