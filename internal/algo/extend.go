package algo

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
)

// Extend grows an existing feasible schedule by up to extra greedy
// selections, without disturbing the assignments already made. It is the
// re-planning workflow of a real organizer — "we found budget for three more
// events" — and the building block the incremental event-planning variants
// cited by the paper ([6] Cheng et al., ICDE 2017) study.
//
// Extend uses ALG's greedy rule against the current schedule state, so
// Extend(inst, empty, k) selects exactly ALG's schedule, which the tests
// assert. The base schedule is not modified; the returned Result holds an
// extended copy.
func Extend(inst *core.Instance, base *core.Schedule, extra int, opts core.ScorerOptions) (*Result, error) {
	return ExtendCtx(context.Background(), inst, base, extra, opts)
}

// ExtendCtx is Extend with the same cooperative cancellation and progress
// contract as Scheduler.ScheduleCtx.
func ExtendCtx(ctx context.Context, inst *core.Instance, base *core.Schedule, extra int, opts core.ScorerOptions) (*Result, error) {
	if extra <= 0 {
		return nil, ErrBadK
	}
	if base == nil {
		return nil, errors.New("algo: Extend needs a base schedule (use NewSchedule for an empty one)")
	}
	if base.Instance() != inst {
		return nil, errors.New("algo: base schedule belongs to a different instance")
	}
	g := newGuard(ctx, extra)
	if err := g.point(); err != nil {
		return nil, err
	}
	start := time.Now()
	sc, err := core.NewScorerWithOptions(inst, opts)
	if err != nil {
		return nil, err
	}
	s := base.Clone()
	var c Counters

	nE, nT := inst.NumEvents(), inst.NumIntervals()
	scores := make([]float64, nE*nT)
	for e := 0; e < nE; e++ {
		if _, taken := s.AssignedInterval(e); taken {
			continue
		}
		for t := 0; t < nT; t++ {
			scores[e*nT+t] = sc.Score(s, e, t)
			c.ScoreEvals++
			if err := g.step(); err != nil {
				return nil, err
			}
		}
	}
	target := s.Len() + extra
	for s.Len() < target {
		bestE, bestT := -1, -1
		bestScore := 0.0
		for e := 0; e < nE; e++ {
			if _, taken := s.AssignedInterval(e); taken {
				continue
			}
			for t := 0; t < nT; t++ {
				c.Examined++
				if !s.Feasible(e, t) {
					continue
				}
				sv := scores[e*nT+t]
				if bestE < 0 || betterFull(sv, int32(e), t, bestScore, int32(bestE), bestT) {
					bestE, bestT, bestScore = e, t, sv
				}
			}
		}
		if bestE < 0 {
			break
		}
		if err := s.Assign(bestE, bestT); err != nil {
			return nil, err
		}
		if err := g.selected(s.Len() - base.Len()); err != nil {
			return nil, err
		}
		if s.Len() >= target {
			break
		}
		for e := 0; e < nE; e++ {
			if _, taken := s.AssignedInterval(e); taken {
				continue
			}
			if !s.Feasible(e, bestT) {
				continue
			}
			scores[e*nT+bestT] = sc.Score(s, e, bestT)
			c.ScoreEvals++
			if err := g.step(); err != nil {
				return nil, err
			}
		}
	}
	return finish(sc, s, c, start), nil
}
