package algo

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/score"
)

// Extend grows an existing feasible schedule by up to extra greedy
// selections, without disturbing the assignments already made. It is the
// re-planning workflow of a real organizer — "we found budget for three more
// events" — and the building block the incremental event-planning variants
// cited by the paper ([6] Cheng et al., ICDE 2017) study.
//
// Extend uses ALG's greedy rule against the current schedule state, so
// Extend(inst, empty, k) selects exactly ALG's schedule, which the tests
// assert. The base schedule is not modified; the returned Result holds an
// extended copy.
func Extend(inst *core.Instance, base *core.Schedule, extra int, opts core.ScorerOptions) (*Result, error) {
	return ExtendCtx(context.Background(), inst, base, extra, opts)
}

// ExtendCtx is Extend with the same cooperative cancellation and progress
// contract as Scheduler.ScheduleCtx.
func ExtendCtx(ctx context.Context, inst *core.Instance, base *core.Schedule, extra int, opts core.ScorerOptions) (*Result, error) {
	if err := checkExtend(inst, base, extra); err != nil {
		return nil, err
	}
	en, err := score.New(inst, opts)
	if err != nil {
		return nil, err
	}
	defer en.Close()
	return extendWith(ctx, en, base, extra)
}

// ExtendWithEngine is ExtendCtx against a shared scoring engine (which pins
// the instance), the form sesd uses so extends of one instance version reuse
// the version's engine.
func ExtendWithEngine(ctx context.Context, en *score.Engine, base *core.Schedule, extra int) (*Result, error) {
	if err := checkExtend(en.Instance(), base, extra); err != nil {
		return nil, err
	}
	return extendWith(ctx, en, base, extra)
}

func checkExtend(inst *core.Instance, base *core.Schedule, extra int) error {
	if extra <= 0 {
		return ErrBadK
	}
	if base == nil {
		return errors.New("algo: Extend needs a base schedule (use NewSchedule for an empty one)")
	}
	if base.Instance() != inst {
		return errors.New("algo: base schedule belongs to a different instance")
	}
	return nil
}

func extendWith(ctx context.Context, en *score.Engine, base *core.Schedule, extra int) (*Result, error) {
	inst := en.Instance()
	g := newGuard(ctx, extra)
	if err := g.point(); err != nil {
		return nil, err
	}
	start := time.Now()
	s := base.Clone()
	var c Counters

	nE, nT := inst.NumEvents(), inst.NumIntervals()
	// Initial frontier: every interval of every still-unassigned event,
	// scored against the base schedule in one batch.
	scores := make([]float64, nE*nT)
	cands := make([]score.Candidate, 0, nE*nT)
	for e := 0; e < nE; e++ {
		if _, taken := s.AssignedInterval(e); taken {
			continue
		}
		for t := 0; t < nT; t++ {
			cands = append(cands, score.Candidate{Event: e, Interval: t})
		}
	}
	vals := make([]float64, len(cands))
	if err := en.ScoreBatch(g.ctx, s, cands, vals); err != nil {
		return nil, err
	}
	for i, cd := range cands {
		scores[cd.Event*nT+cd.Interval] = vals[i]
	}
	c.ScoreEvals += int64(len(cands))
	if err := g.batch(len(cands)); err != nil {
		return nil, err
	}

	target := s.Len() + extra
	for s.Len() < target {
		bestE, bestT := -1, -1
		bestScore := 0.0
		for e := 0; e < nE; e++ {
			if _, taken := s.AssignedInterval(e); taken {
				continue
			}
			for t := 0; t < nT; t++ {
				c.Examined++
				if !s.Feasible(e, t) {
					continue
				}
				sv := scores[e*nT+t]
				if bestE < 0 || betterFull(sv, int32(e), t, bestScore, int32(bestE), bestT) {
					bestE, bestT, bestScore = e, t, sv
				}
			}
		}
		if bestE < 0 {
			break
		}
		if err := s.Assign(bestE, bestT); err != nil {
			return nil, err
		}
		if err := g.selected(s.Len() - base.Len()); err != nil {
			return nil, err
		}
		if s.Len() >= target {
			break
		}
		// Recompute the selected interval's column in one batch.
		upd := cands[:0]
		for e := 0; e < nE; e++ {
			if _, taken := s.AssignedInterval(e); taken {
				continue
			}
			if !s.Feasible(e, bestT) {
				continue
			}
			upd = append(upd, score.Candidate{Event: e, Interval: bestT})
		}
		if err := en.ScoreBatch(g.ctx, s, upd, vals); err != nil {
			return nil, err
		}
		for i, cd := range upd {
			scores[cd.Event*nT+bestT] = vals[i]
		}
		c.ScoreEvals += int64(len(upd))
		if err := g.batch(len(upd)); err != nil {
			return nil, err
		}
	}
	return finish(en, s, c, start), nil
}
