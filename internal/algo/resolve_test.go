package algo

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/score"
)

// resolveMutate applies a small deterministic mutation for step i and
// returns the scorer-level dirty set, mirroring what the server derives from
// a MutateRequest.
func resolveMutate(t *testing.T, inst *core.Instance, i int) core.ScorerDelta {
	t.Helper()
	nE, nT, nC := inst.NumEvents(), inst.NumIntervals(), inst.NumCompeting()
	e := (i * 3) % nE
	inst.SetInterest((i*7)%inst.NumUsers(), e, float64(i%10)/10)
	d := core.ScorerDelta{Events: []int{e}}
	if nC > 0 {
		ci := (i * 5) % nC
		inst.SetCompetingInterest((i*11)%inst.NumUsers(), ci, float64((i+3)%10)/10)
		d.CompIntervals = []int{inst.Competing[ci].Interval}
	}
	tt := (i * 2) % nT
	inst.SetActivity((i*13)%inst.NumUsers(), tt, float64((i+5)%10)/10)
	d.ActIntervals = []int{tt}
	return core.ScorerDelta{}.Merge(d)
}

func sameResult(t *testing.T, label string, warm, cold *Result) {
	t.Helper()
	if warm.Utility != cold.Utility {
		t.Errorf("%s: utility %v warm vs %v cold", label, warm.Utility, cold.Utility)
	}
	if warm.Counters != cold.Counters {
		t.Errorf("%s: counters %+v warm vs %+v cold", label, warm.Counters, cold.Counters)
	}
	gw, gc := warm.Schedule.Assignments(), cold.Schedule.Assignments()
	if len(gw) != len(gc) {
		t.Fatalf("%s: %d selections warm vs %d cold", label, len(gw), len(gc))
	}
	for j := range gw {
		if gw[j] != gc[j] {
			t.Errorf("%s: selection %d = %+v warm vs %+v cold", label, j, gw[j], gc[j])
		}
	}
}

// The exact-mode gate of the incremental re-solve feature: across a chain of
// mutations, every scheduler run on a warm delta-rebuilt engine must be
// bit-identical — utility, ScoreEvals, Examined, selection sequence — to the
// same scheduler on a cold engine of the mutated instance, at every worker
// count. This is the algo-level half of the CI parallel-equality gate
// (engine-level bit-identity lives in score's TestWarmEngineBitIdentical).
func TestResolveExactMatchesCold(t *testing.T) {
	for _, workers := range []int{0, 3, 8} {
		opts := core.ScorerOptions{Workers: workers}
		inst := randomInstance(61, 14, 6, 5, 150, 5)
		warm, err := score.New(inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		for step := 1; step <= 3; step++ {
			next := inst.Snapshot()
			d := resolveMutate(t, next, step)
			w2, err := score.NewFromPrevious(warm, next, opts, d)
			if err != nil {
				t.Fatal(err)
			}
			warm.Close()
			warm, inst = w2, next
			cold, err := score.New(inst, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range Names() {
				rw, _, err := Resolve(context.Background(), name, 9, warm, 5, nil, false)
				if err != nil {
					t.Fatalf("%s warm: %v", name, err)
				}
				rc, _, err := Resolve(context.Background(), name, 9, cold, 5, nil, false)
				if err != nil {
					t.Fatalf("%s cold: %v", name, err)
				}
				label := name + " w=" + string(rune('0'+workers))
				sameResult(t, label, rw, rc)
			}
			cold.Close()
		}
		warm.Close()
	}
}

// Verified replay must return the cold schedule and utility whenever it
// claims a replay, and fall back (still bit-identical, counters included)
// whenever it cannot prove the old picks. Driven over a mutation chain so
// both outcomes occur.
func TestResolveReplayCorrect(t *testing.T) {
	inst := randomInstance(62, 12, 5, 4, 120, 5)
	en, err := score.New(inst, core.ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prevByName := map[string][]core.Assignment{}
	replayed, fellBack := 0, 0
	for step := 1; step <= 6; step++ {
		next := inst.Snapshot()
		d := resolveMutate(t, next, step)
		w2, err := score.NewFromPrevious(en, next, core.ScorerOptions{}, d)
		if err != nil {
			t.Fatal(err)
		}
		en.Close()
		en, inst = w2, next
		cold, err := score.New(inst, core.ScorerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"ALG", "INC"} {
			rc, _, err := Resolve(context.Background(), name, 0, cold, 4, nil, false)
			if err != nil {
				t.Fatal(err)
			}
			rw, info, err := Resolve(context.Background(), name, 0, en, 4, prevByName[name], true)
			if err != nil {
				t.Fatal(err)
			}
			if info.Replayed {
				replayed++
				// A replay proves the same selections and utility; its
				// counters measure verification work, not the cold run's.
				if rw.Utility != rc.Utility {
					t.Errorf("step %d %s: replay utility %v vs cold %v", step, name, rw.Utility, rc.Utility)
				}
				gw, gc := rw.Schedule.Assignments(), rc.Schedule.Assignments()
				if len(gw) != len(gc) {
					t.Fatalf("step %d %s: replay %d selections vs cold %d", step, name, len(gw), len(gc))
				}
				for j := range gw {
					if gw[j] != gc[j] {
						t.Errorf("step %d %s: replay selection %d = %+v vs cold %+v", step, name, j, gw[j], gc[j])
					}
				}
				if rw.ScoreEvals > rc.ScoreEvals {
					t.Errorf("step %d %s: replay evaluated more (%d) than cold (%d)", step, name, rw.ScoreEvals, rc.ScoreEvals)
				}
			} else {
				fellBack++
				sameResult(t, name+" fallback", rw, rc)
			}
			prevByName[name] = append([]core.Assignment(nil), rc.Schedule.Assignments()...)
		}
	}
	cold2, err := score.New(inst, core.ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cold2.Close()
	// An unchanged instance always verifies: every bound in an untouched
	// interval is exact, so the original argmax picks reproduce themselves.
	rc, _, err := Resolve(context.Background(), "ALG", 0, cold2, 4, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	rr, info, err := Resolve(context.Background(), "ALG", 0, en, 4, rc.Schedule.Assignments(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Replayed {
		t.Error("replay of an unchanged instance fell back")
	}
	if rr.Utility != rc.Utility {
		t.Errorf("unchanged replay utility %v vs %v", rr.Utility, rc.Utility)
	}
	if replayed == 0 {
		t.Log("note: no mutation step verified as a replay (all fell back)")
	}
	t.Logf("replayed %d, fell back %d across the chain", replayed, fellBack)
	en.Close()
}

// Non-greedy schedulers must ignore the replay flag and run exactly.
func TestResolveReplayFallbackSchedulers(t *testing.T) {
	inst := randomInstance(63, 10, 4, 3, 80, 4)
	en, err := score.New(inst, core.ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	prev := []core.Assignment{{Event: 0, Interval: 0}}
	for _, name := range []string{"HOR", "HOR-I", "TOP", "RAND"} {
		rr, info, err := Resolve(context.Background(), name, 3, en, 4, prev, true)
		if err != nil {
			t.Fatal(err)
		}
		if info.Replayed {
			t.Errorf("%s claimed a verified replay", name)
		}
		sched, err := NewWithEngine(name, 3, en)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := sched.Schedule(inst, 4)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, name, rr, rc)
	}
	if _, _, err := Resolve(context.Background(), "ALG", 0, en, 0, nil, false); err != ErrBadK {
		t.Errorf("k=0 returned %v, want ErrBadK", err)
	}
	if _, _, err := Resolve(context.Background(), "nope", 0, en, 3, nil, false); err == nil {
		t.Error("unknown scheduler accepted")
	}
}
