package algo

import (
	"context"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/score"
)

// INC is the Incremental Updating algorithm (Section 3.2, Algorithm 1).
//
// INC makes the same greedy selections as ALG (Proposition 3) but avoids
// most of ALG's score recomputations with two schemes:
//
//   - Incremental updating: stale scores are upper bounds (Proposition 1),
//     so before a selection only the stale assignments whose stored score
//     reaches the bound Φ — the score of the top updated valid assignment —
//     need recomputing (Corollary 1). Stale assignments are processed in
//     globally descending stored-score order, so Φ grows as fast as
//     possible and the minimal set is updated (Example 3 updates one
//     assignment where ALG recomputes four).
//
//   - Interval-based assignment organization: one sorted list L_t per
//     interval plus the per-interval top M_t lets selection, bound
//     maintenance and update targeting touch only list prefixes instead of
//     the full assignment set (the Figure 10b search-space reduction).
type INC struct {
	// Opts enables the Section 2.1 problem extensions.
	Opts core.ScorerOptions
	// Engine, when set, is the shared scoring engine to use; otherwise a
	// private engine is built from Opts for the run.
	Engine *score.Engine
}

// Name implements Scheduler.
func (INC) Name() string { return "INC" }

// incList is the assignment list L_t of one interval.
type incList struct {
	items []item // sorted descending by stored score (event index tie-break)
	// dirty marks a partially updated list: at least one item may be
	// stale. Clean lists are skipped entirely during update passes.
	dirty bool
}

// top is an entry of the M list: the top updated valid assignment per
// interval.
type top struct {
	e     int32
	score float64
	ok    bool
}

type incState struct {
	inst  *core.Instance
	en    *score.Engine
	s     *core.Schedule
	lists []incList
	m     []top
	g     *guard
	c     Counters
}

// Schedule implements Scheduler.
func (a INC) Schedule(inst *core.Instance, k int) (*Result, error) {
	return a.ScheduleCtx(context.Background(), inst, k)
}

// ScheduleCtx implements Scheduler.
func (a INC) ScheduleCtx(ctx context.Context, inst *core.Instance, k int) (*Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	g := newGuard(ctx, k)
	if err := g.point(); err != nil {
		return nil, err
	}
	start := time.Now()
	en, release, err := engineFor(a.Engine, inst, a.Opts)
	if err != nil {
		return nil, err
	}
	defer release()
	st := &incState{
		inst:  inst,
		en:    en,
		s:     core.NewSchedule(inst),
		lists: make([]incList, inst.NumIntervals()),
		m:     make([]top, inst.NumIntervals()),
		g:     g,
	}

	// Generate all assignments, score them against the empty schedule in one
	// batch fan-out and organize them into per-interval sorted lists
	// (Algorithm 1, lines 2-5). Candidates are collected interval-major so
	// the per-interval slices of the frontier stay contiguous.
	nE, nT := inst.NumEvents(), inst.NumIntervals()
	cands := make([]score.Candidate, 0, nE*nT)
	starts := make([]int, nT+1)
	for t := 0; t < nT; t++ {
		starts[t] = len(cands)
		for e := 0; e < nE; e++ {
			if !st.s.Feasible(e, t) {
				continue // ξ_e > θ: never schedulable
			}
			cands = append(cands, score.Candidate{Event: e, Interval: t})
		}
	}
	starts[nT] = len(cands)
	vals := make([]float64, len(cands))
	if err := en.ScoreBatch(g.ctx, st.s, cands, vals); err != nil {
		return nil, err
	}
	st.c.ScoreEvals += int64(len(cands))
	if err := g.batch(len(cands)); err != nil {
		return nil, err
	}
	for t := 0; t < nT; t++ {
		items := make([]item, 0, starts[t+1]-starts[t])
		for i := starts[t]; i < starts[t+1]; i++ {
			items = append(items, item{e: int32(cands[i].Event), score: vals[i], updated: true})
		}
		sortItems(items)
		st.lists[t] = incList{items: items}
		if len(items) > 0 {
			st.m[t] = top{e: items[0].e, score: items[0].score, ok: true}
		}
	}

	for st.s.Len() < k {
		if err := g.point(); err != nil {
			return nil, err
		}
		// If every M entry is gone (e.g. |T| = 1 right after a
		// selection), bootstrap Φ by updating stale assignments first.
		if !st.anyTop() {
			if err := st.updatePass(); err != nil {
				return nil, err
			}
		}
		tp := st.selectTop()
		if tp < 0 {
			break // no valid assignment remains anywhere
		}
		ep := st.m[tp].e
		if err := st.s.Assign(int(ep), tp); err != nil {
			return nil, err
		}
		if err := g.selected(st.s.Len()); err != nil {
			return nil, err
		}
		if st.s.Len() >= k {
			break // no selection follows, so no bookkeeping is needed
		}
		// The selected interval's denominators changed: every assignment
		// in L_tp is now stale (Algorithm 1, lines 9-10).
		lt := &st.lists[tp]
		for i := range lt.items {
			lt.items[i].updated = false
		}
		lt.dirty = true
		st.m[tp] = top{}
		// Event ep is gone everywhere: M entries referencing it must be
		// replaced by their list's next top updated valid assignment
		// (Algorithm 1, lines 11-15).
		for t := 0; t < nT; t++ {
			if t != tp && st.m[t].ok && st.m[t].e == ep {
				st.m[t] = st.rescanTop(t)
			}
		}
		if err := st.updatePass(); err != nil {
			return nil, err
		}
	}
	return finish(st.en, st.s, st.c, start), nil
}

// anyTop reports whether any M entry is populated.
func (st *incState) anyTop() bool {
	for _, m := range st.m {
		if m.ok {
			return true
		}
	}
	return false
}

// selectTop returns the interval whose M entry is the global top assignment
// under the deterministic tie-break, or -1 if M is empty.
func (st *incState) selectTop() int {
	best := -1
	for t, m := range st.m {
		if !m.ok {
			continue
		}
		if best < 0 || betterFull(m.score, m.e, t, st.m[best].score, st.m[best].e, best) {
			best = t
		}
	}
	return best
}

// rescanTop scans list t for its top updated valid assignment, pruning
// invalid entries on the way. This is the getTopAssgn(L_i) of Algorithm 1
// line 15 and costs a full list traversal (the (|T|−1)(|E|−i) term of the
// complexity analysis).
func (st *incState) rescanTop(t int) top {
	lt := &st.lists[t]
	out := lt.items[:0]
	var best top
	for _, it := range lt.items {
		st.c.Examined++
		if !st.s.Valid(int(it.e), t) {
			continue // prune: event assigned or interval constraint hit
		}
		out = append(out, it)
		if it.updated && (!best.ok || betterScoreEvent(it.score, it.e, best.score, best.e)) {
			best = top{e: it.e, score: it.score, ok: true}
		}
	}
	lt.items = out
	return best
}

// staleTop returns the position and stored score of list t's first stale
// valid item, pruning invalid entries encountered on the way. ok is false if
// the list holds no stale valid item (it is then marked clean).
func (st *incState) staleTop(t int) (pos int, score float64, ok bool) {
	lt := &st.lists[t]
	i := 0
	for i < len(lt.items) {
		it := lt.items[i]
		st.c.Examined++
		if !st.s.Valid(int(it.e), t) {
			lt.items = append(lt.items[:i], lt.items[i+1:]...)
			continue
		}
		if !it.updated {
			return i, it.score, true
		}
		i++
	}
	lt.dirty = false
	return 0, 0, false
}

// updatePass performs the incremental updating scheme before a selection:
// repeatedly recompute the globally highest-stored stale assignment while
// its stored score reaches the bound Φ (the top of M). Stored scores are
// upper bounds, so once the best stale stored score drops below Φ no stale
// assignment can be the next selection (Proposition 1) and the pass stops.
// The pass polls the run's context between recomputations.
func (st *incState) updatePass() error {
	phi := math.Inf(-1)
	phiE := int32(-1)
	for _, m := range st.m {
		if m.ok && (phiE < 0 || betterScoreEvent(m.score, m.e, phi, phiE)) {
			phi, phiE = m.score, m.e
		}
	}
	// Cache each dirty list's stale top for this pass; a cache entry is
	// refreshed only when its list changes.
	type cacheEntry struct {
		pos   int
		score float64
		ok    bool
		valid bool
	}
	cache := make([]cacheEntry, len(st.lists))
	for {
		bestT := -1
		var bestPos int
		var bestScore float64
		var bestE int32
		for t := range st.lists {
			if !st.lists[t].dirty {
				continue
			}
			if !cache[t].valid {
				pos, sc, ok := st.staleTop(t)
				cache[t] = cacheEntry{pos: pos, score: sc, ok: ok, valid: true}
			}
			ce := cache[t]
			if !ce.ok {
				continue
			}
			e := st.lists[t].items[ce.pos].e
			if bestT < 0 || betterFull(ce.score, e, t, bestScore, bestE, bestT) {
				bestT, bestPos, bestScore, bestE = t, ce.pos, ce.score, e
			}
		}
		if bestT < 0 {
			return nil // nothing stale anywhere
		}
		if !math.IsInf(phi, -1) && bestScore < phi {
			return nil // Corollary 1: all remaining stale scores are below Φ
		}
		// Recompute the stale top and re-insert it in sorted position
		// (scores only decrease, so it moves toward the tail). Each
		// recomputation's target depends on the previous result (via Φ and
		// the list order), so this pass uses the engine's single-evaluation
		// path, which shards the user pass itself on large instances.
		lt := &st.lists[bestT]
		it := lt.items[bestPos]
		it.score = st.en.Score(st.s, int(it.e), bestT)
		it.updated = true
		st.c.ScoreEvals++
		if err := st.g.step(); err != nil {
			return err
		}
		lt.items = append(lt.items[:bestPos], lt.items[bestPos+1:]...)
		ins := sort.Search(len(lt.items), func(i int) bool {
			return !betterScoreEvent(lt.items[i].score, lt.items[i].e, it.score, it.e)
		})
		lt.items = append(lt.items, item{})
		copy(lt.items[ins+1:], lt.items[ins:])
		lt.items[ins] = it
		cache[bestT].valid = false
		// Fold the fresh exact score into M and Φ.
		if !st.m[bestT].ok || betterScoreEvent(it.score, it.e, st.m[bestT].score, st.m[bestT].e) {
			st.m[bestT] = top{e: it.e, score: it.score, ok: true}
		}
		if phiE < 0 || betterScoreEvent(it.score, it.e, phi, phiE) {
			phi, phiE = it.score, it.e
		}
	}
}
