package algo

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

// all schedulers under test, keyed by name.
func schedulers() []Scheduler {
	return []Scheduler{ALG{}, INC{}, HOR{}, HORI{}, TOP{}, RAND{Seed: 1}}
}

// --- Golden traces of the paper's running example (Figures 2-4) ---

// Example 2 (Figure 2): ALG on the running example with k = 3 selects
// α(e4,t2), then α(e1,t1), then α(e2,t2).
func TestExample2ALGTrace(t *testing.T) {
	inst := core.RunningExample()
	res, err := ALG{}.Schedule(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Assignment{{Event: 3, Interval: 1}, {Event: 0, Interval: 0}, {Event: 1, Interval: 1}}
	got := res.Schedule.Assignments()
	if len(got) != len(want) {
		t.Fatalf("ALG selected %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ALG selection %d = %+v, want %+v (full: %v)", i+1, got[i], want[i], res.Schedule)
		}
	}
	if math.Abs(res.Utility-1.407302) > 5e-4 {
		t.Errorf("ALG utility = %.6f, want 1.407302", res.Utility)
	}
	// Figure 2's update column: ALG recomputes 4 scores after selection ①
	// (e1,e2,e3 at t2 — e4 is taken) plus 1 after selection ② (e3 at t1;
	// e2@t1 is infeasible), plus the 8 initial scores.
	if res.ScoreEvals != 8+3+1 {
		t.Errorf("ALG performed %d score evaluations, want 12 (8 initial + 3 + 1 updates)", res.ScoreEvals)
	}
}

// Example 3 (Figure 3): INC returns the same schedule while performing only
// one score update beyond the initial 8 (α(e2,t2) before the third
// selection).
func TestExample3INCTrace(t *testing.T) {
	inst := core.RunningExample()
	res, err := INC{}.Schedule(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Assignment{{Event: 3, Interval: 1}, {Event: 0, Interval: 0}, {Event: 1, Interval: 1}}
	got := res.Schedule.Assignments()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("INC selection %d = %+v, want %+v", i+1, got[i], want[i])
		}
	}
	if res.ScoreEvals != 8+1 {
		t.Errorf("INC performed %d score evaluations, want 9 (8 initial + 1 update; the paper's Example 3)", res.ScoreEvals)
	}
}

// Example 4 (Figure 4): HOR finds the same schedule as ALG/INC with 3
// updates — selections follow the horizontal policy, so the order is
// α(e4,t2), α(e1,t1) (layer 1), then α(e2,t2) (layer 2).
func TestExample4HORTrace(t *testing.T) {
	inst := core.RunningExample()
	res, err := HOR{}.Schedule(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Assignment{{Event: 3, Interval: 1}, {Event: 0, Interval: 0}, {Event: 1, Interval: 1}}
	got := res.Schedule.Assignments()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HOR selection %d = %+v, want %+v", i+1, got[i], want[i])
		}
	}
	// Figure 4: layer 2 recomputes the three remaining valid assignments
	// (e2@t1 is infeasible, e2@t2, e3@t1, e3@t2 are valid) — the paper
	// counts 3 updates — after the 8 initial computations.
	if res.ScoreEvals != 8+3 {
		t.Errorf("HOR performed %d score evaluations, want 11 (8 initial + 3 layer-2 updates)", res.ScoreEvals)
	}
}

// Example 5: HOR-I performs two of the three updates HOR performs in the
// second layer — after updating α(e2,t2) (score 0.16), α(e3,t2)'s stale 0.09
// is below the interval bound and is skipped; t1's α(e3,t1) must still be
// updated.
func TestExample5HORITrace(t *testing.T) {
	inst := core.RunningExample()
	res, err := HORI{}.Schedule(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Assignment{{Event: 3, Interval: 1}, {Event: 0, Interval: 0}, {Event: 1, Interval: 1}}
	got := res.Schedule.Assignments()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HOR-I selection %d = %+v, want %+v", i+1, got[i], want[i])
		}
	}
	if res.ScoreEvals != 8+2 {
		t.Errorf("HOR-I performed %d score evaluations, want 10 (8 initial + 2 layer-2 updates; the paper's Example 5)", res.ScoreEvals)
	}
}

// --- Baselines on the running example ---

func TestTOPRunningExample(t *testing.T) {
	inst := core.RunningExample()
	res, err := TOP{}.Schedule(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	// TOP's initial top-3 valid assignments by score: e4@t2 (0.656),
	// e4@t1 invalid (e4 taken), e1@t1... ordering: 0.656 e4t2, 0.643 e4t1,
	// 0.590 e1t1, 0.573 e2t2, ... → picks e4@t2, e1@t1, e2@t2.
	want := []core.Assignment{{Event: 3, Interval: 1}, {Event: 0, Interval: 0}, {Event: 1, Interval: 1}}
	got := res.Schedule.Assignments()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TOP selection %d = %+v, want %+v", i+1, got[i], want[i])
		}
	}
	if res.ScoreEvals != 8 {
		t.Errorf("TOP must compute exactly |E|·|T| = 8 scores, got %d", res.ScoreEvals)
	}
}

func TestRANDProperties(t *testing.T) {
	inst := core.RunningExample()
	r1, err := RAND{Seed: 7}.Schedule(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ScoreEvals != 0 {
		t.Errorf("RAND performed %d score evaluations, want 0", r1.ScoreEvals)
	}
	if r1.Schedule.Len() != 3 {
		t.Errorf("RAND scheduled %d events, want 3", r1.Schedule.Len())
	}
	if err := r1.Schedule.CheckFeasible(); err != nil {
		t.Error(err)
	}
	// Determinism for a fixed seed.
	r2, _ := RAND{Seed: 7}.Schedule(inst, 3)
	for i, a := range r1.Schedule.Assignments() {
		if r2.Schedule.Assignments()[i] != a {
			t.Fatal("RAND not deterministic for fixed seed")
		}
	}
	// Different seeds eventually differ.
	differ := false
	for seed := uint64(1); seed <= 10 && !differ; seed++ {
		r3, _ := RAND{Seed: seed}.Schedule(inst, 3)
		for i, a := range r1.Schedule.Assignments() {
			if r3.Schedule.Assignments()[i] != a {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Error("RAND produced identical schedules across 10 seeds")
	}
}

// --- Shared behaviour across schedulers ---

func TestBadK(t *testing.T) {
	inst := core.RunningExample()
	for _, s := range schedulers() {
		if _, err := s.Schedule(inst, 0); err == nil {
			t.Errorf("%s accepted k = 0", s.Name())
		}
		if _, err := s.Schedule(inst, -5); err == nil {
			t.Errorf("%s accepted k = -5", s.Name())
		}
	}
}

func TestKLargerThanFeasible(t *testing.T) {
	// Two events, one location, one interval: only one assignment possible.
	events := []core.Event{
		{Location: 0, Resources: 1},
		{Location: 0, Resources: 1},
	}
	inst, err := core.NewInstance(events, []core.Interval{{}}, nil, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		inst.SetInterest(u, 0, 0.5)
		inst.SetInterest(u, 1, 0.5)
		inst.SetActivity(u, 0, 0.5)
	}
	for _, s := range schedulers() {
		res, err := s.Schedule(inst, 5)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Schedule.Len() != 1 {
			t.Errorf("%s scheduled %d events; only 1 is feasible", s.Name(), res.Schedule.Len())
		}
	}
}

func TestAllSchedulersFeasibleAndSized(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		inst := randomInstance(seed, 12, 4, 6, 30, 8)
		for _, s := range schedulers() {
			res, err := s.Schedule(inst, 6)
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.Name(), seed, err)
			}
			if err := res.Schedule.CheckFeasible(); err != nil {
				t.Errorf("%s seed %d: %v", s.Name(), seed, err)
			}
			if res.Schedule.Len() > 6 {
				t.Errorf("%s seed %d: scheduled %d > k events", s.Name(), seed, res.Schedule.Len())
			}
			if res.Utility < 0 {
				t.Errorf("%s seed %d: negative utility %v", s.Name(), seed, res.Utility)
			}
		}
	}
}

func TestNewFactory(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, 3)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := New("nope", 0); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

// --- Equivalence properties ---

// randomInstance builds a reproducible random instance. locSpread controls
// how many distinct locations exist (smaller → more location conflicts).
func randomInstance(seed uint64, nE, nT, nC, nU, locSpread int) *core.Instance {
	r := randx.New(seed)
	events := make([]core.Event, nE)
	for i := range events {
		events[i] = core.Event{Location: r.Intn(locSpread), Resources: float64(r.IntRange(1, 3))}
	}
	intervals := make([]core.Interval, nT)
	competing := make([]core.Competing, nC)
	for i := range competing {
		competing[i] = core.Competing{Interval: r.Intn(nT)}
	}
	inst, err := core.NewInstance(events, intervals, competing, nU, 7)
	if err != nil {
		panic(err)
	}
	row := make([]float32, inst.NumEvents()+inst.NumCompeting())
	act := make([]float32, inst.NumIntervals())
	for u := 0; u < nU; u++ {
		for i := range row {
			row[i] = float32(r.Float64())
		}
		inst.SetInterestRow(u, row)
		for i := range act {
			act[i] = float32(r.Float64())
		}
		inst.SetActivityRow(u, act)
	}
	return inst
}

// Proposition 3: INC and ALG always return the same solution — the very same
// sequence of selections, not just equal utility.
func TestProposition3INCEqualsALG(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		for _, k := range []int{1, 3, 7, 12} {
			inst := randomInstance(seed, 14, 4, 5, 25, 6)
			ra, err := (ALG{}).Schedule(inst, k)
			if err != nil {
				t.Fatal(err)
			}
			ri, err := (INC{}).Schedule(inst, k)
			if err != nil {
				t.Fatal(err)
			}
			ga, gi := ra.Schedule.Assignments(), ri.Schedule.Assignments()
			if len(ga) != len(gi) {
				t.Fatalf("seed %d k %d: ALG made %d selections, INC %d", seed, k, len(ga), len(gi))
			}
			for i := range ga {
				if ga[i] != gi[i] {
					t.Fatalf("seed %d k %d: selection %d differs: ALG %+v, INC %+v", seed, k, i, ga[i], gi[i])
				}
			}
			if ri.ScoreEvals > ra.ScoreEvals {
				t.Errorf("seed %d k %d: INC performed more score evals (%d) than ALG (%d)", seed, k, ri.ScoreEvals, ra.ScoreEvals)
			}
		}
	}
}

// Proposition 6: HOR-I and HOR always return the same solution.
func TestProposition6HORIEqualsHOR(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		for _, k := range []int{1, 3, 7, 12} {
			inst := randomInstance(seed, 14, 4, 5, 25, 6)
			rh, err := (HOR{}).Schedule(inst, k)
			if err != nil {
				t.Fatal(err)
			}
			ri, err := (HORI{}).Schedule(inst, k)
			if err != nil {
				t.Fatal(err)
			}
			gh, gi := rh.Schedule.Assignments(), ri.Schedule.Assignments()
			if len(gh) != len(gi) {
				t.Fatalf("seed %d k %d: HOR made %d selections, HOR-I %d", seed, k, len(gh), len(gi))
			}
			for i := range gh {
				if gh[i] != gi[i] {
					t.Fatalf("seed %d k %d: selection %d differs: HOR %+v, HOR-I %+v", seed, k, i, gh[i], gi[i])
				}
			}
			if ri.ScoreEvals > rh.ScoreEvals {
				t.Errorf("seed %d k %d: HOR-I performed more score evals (%d) than HOR (%d)", seed, k, ri.ScoreEvals, rh.ScoreEvals)
			}
		}
	}
}

// Section 3.4: HOR-I is identical to HOR when k ≤ |T| — including the work
// performed, since a single layer needs no updates.
func TestHORIIdenticalToHORSingleLayer(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		inst := randomInstance(seed, 14, 6, 5, 25, 6)
		k := 5 // k < |T| = 6
		rh, _ := (HOR{}).Schedule(inst, k)
		ri, _ := (HORI{}).Schedule(inst, k)
		if rh.ScoreEvals != ri.ScoreEvals {
			t.Errorf("seed %d: single-layer score evals differ: HOR %d, HOR-I %d", seed, rh.ScoreEvals, ri.ScoreEvals)
		}
		if rh.Utility != ri.Utility {
			t.Errorf("seed %d: single-layer utilities differ", seed)
		}
	}
}

// Proposition 4 region: when k ≤ |T|, HOR performs no update computations at
// all — exactly the initial valid-assignment scores — hence strictly fewer
// score evaluations than ALG whenever ALG performs any update.
func TestProposition4HORFewerComputations(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		inst := randomInstance(seed, 16, 8, 5, 25, 8)
		k := 6 // k ≤ |T| = 8
		ra, _ := (ALG{}).Schedule(inst, k)
		rh, _ := (HOR{}).Schedule(inst, k)
		if rh.ScoreEvals >= ra.ScoreEvals {
			t.Errorf("seed %d: HOR evals %d ≥ ALG evals %d with k ≤ |T|", seed, rh.ScoreEvals, ra.ScoreEvals)
		}
	}
}

// The greedy methods must never lose to RAND on average, and ALG's greedy
// utility must match the telescoped sum of its selected gains.
func TestGreedyBeatsRandomOnAverage(t *testing.T) {
	var greedy, random float64
	for seed := uint64(1); seed <= 10; seed++ {
		inst := randomInstance(seed, 16, 5, 6, 40, 6)
		ra, _ := (ALG{}).Schedule(inst, 8)
		rr, _ := (RAND{Seed: seed}).Schedule(inst, 8)
		greedy += ra.Utility
		random += rr.Utility
	}
	if greedy <= random {
		t.Errorf("greedy total %v not above random total %v", greedy, random)
	}
}

// HOR's utility should stay very close to ALG's. The paper reports identical
// utilities in >70% of its (large, default-parameter) experiments with a gap
// ≤1.3% otherwise; tiny random instances diverge more often, so here we
// require a ≥90% per-instance floor, a ≥97% aggregate, and a non-trivial
// exact-match rate. The harness-scale match-rate statistic is reproduced by
// the summary experiment in internal/exp.
func TestHORUtilityCloseToALG(t *testing.T) {
	same, total := 0, 0
	var ua, uh float64
	for seed := uint64(1); seed <= 25; seed++ {
		inst := randomInstance(seed, 16, 4, 6, 30, 8)
		ra, _ := (ALG{}).Schedule(inst, 8)
		rh, _ := (HOR{}).Schedule(inst, 8)
		total++
		ua += ra.Utility
		uh += rh.Utility
		if math.Abs(ra.Utility-rh.Utility) < 1e-9 {
			same++
		} else if rh.Utility < ra.Utility*0.90 {
			t.Errorf("seed %d: HOR utility %v below 90%% of ALG %v", seed, rh.Utility, ra.Utility)
		}
	}
	if uh < 0.97*ua {
		t.Errorf("aggregate HOR utility %v below 97%% of ALG %v", uh, ua)
	}
	if same*4 < total {
		t.Errorf("HOR matched ALG exactly in only %d/%d runs", same, total)
	}
}

// Counters must be self-consistent: Computations = ScoreEvals × |U|.
func TestComputationsScaling(t *testing.T) {
	inst := core.RunningExample()
	res, _ := (ALG{}).Schedule(inst, 2)
	if got := res.Computations(inst.NumUsers()); got != res.ScoreEvals*2 {
		t.Errorf("Computations = %d, want %d", got, res.ScoreEvals*2)
	}
}

// The reported utility must equal a from-scratch Ω recomputation.
func TestReportedUtilityMatchesScorer(t *testing.T) {
	inst := randomInstance(3, 12, 4, 5, 20, 6)
	sc := core.NewScorer(inst)
	for _, s := range schedulers() {
		res, err := s.Schedule(inst, 5)
		if err != nil {
			t.Fatal(err)
		}
		if u := sc.Utility(res.Schedule); math.Abs(u-res.Utility) > 1e-9 {
			t.Errorf("%s: reported %v, recomputed %v", s.Name(), res.Utility, u)
		}
	}
}

// Stress the INC bound logic with many intervals and heavy location
// conflicts, where M entries are invalidated often.
func TestINCEqualsALGStress(t *testing.T) {
	for seed := uint64(100); seed < 112; seed++ {
		inst := randomInstance(seed, 20, 10, 12, 15, 3)
		ra, _ := (ALG{}).Schedule(inst, 15)
		ri, _ := (INC{}).Schedule(inst, 15)
		ga, gi := ra.Schedule.Assignments(), ri.Schedule.Assignments()
		if len(ga) != len(gi) {
			t.Fatalf("seed %d: lengths differ %d vs %d", seed, len(ga), len(gi))
		}
		for i := range ga {
			if ga[i] != gi[i] {
				t.Fatalf("seed %d: selection %d differs", seed, i)
			}
		}
	}
}

// Stress HOR/HOR-I across multiple layers with k ≫ |T| and the worst case
// k mod |T| = 1 (Propositions 5 and 7).
func TestHOREquivalenceWorstCase(t *testing.T) {
	for seed := uint64(200); seed < 208; seed++ {
		inst := randomInstance(seed, 24, 4, 6, 15, 12)
		for _, k := range []int{9, 13} { // k mod |T| = 1 with |T| = 4
			rh, _ := (HOR{}).Schedule(inst, k)
			ri, _ := (HORI{}).Schedule(inst, k)
			gh, gi := rh.Schedule.Assignments(), ri.Schedule.Assignments()
			if len(gh) != len(gi) {
				t.Fatalf("seed %d k %d: lengths differ", seed, k)
			}
			for i := range gh {
				if gh[i] != gi[i] {
					t.Fatalf("seed %d k %d: selection %d differs: %+v vs %+v", seed, k, i, gh[i], gi[i])
				}
			}
		}
	}
}

// Degenerate instances: all-zero interest (every score 0) must still produce
// deterministic, feasible, k-sized schedules in all deterministic methods.
func TestZeroInterestDegenerate(t *testing.T) {
	events := make([]core.Event, 6)
	for i := range events {
		events[i] = core.Event{Location: i, Resources: 1}
	}
	inst, err := core.NewInstance(events, []core.Interval{{}, {}}, nil, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range schedulers() {
		res, err := s.Schedule(inst, 4)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Schedule.Len() != 4 {
			t.Errorf("%s: scheduled %d, want 4", s.Name(), res.Schedule.Len())
		}
		if res.Utility != 0 {
			t.Errorf("%s: utility %v, want 0", s.Name(), res.Utility)
		}
	}
	// ALG and INC must tie-break identically on the all-zero instance.
	ra, _ := (ALG{}).Schedule(inst, 4)
	ri, _ := (INC{}).Schedule(inst, 4)
	for i, a := range ra.Schedule.Assignments() {
		if ri.Schedule.Assignments()[i] != a {
			t.Fatal("zero-interest tie-break diverged between ALG and INC")
		}
	}
}

// When competing interest is weak, adding a second event to an interval
// gains almost nothing (the stacking gain is ∝ the competing sum C), so the
// greedy ALG spreads events one per interval — exactly the horizontal
// policy. HOR must then return ALG's schedule identically. This guards
// against a systematic bias in the layer selection: any divergence between
// HOR and ALG in other tests must come from genuine stacking opportunities,
// not from implementation drift.
func TestHOREqualsALGUnderWeakCompetition(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		r := randx.New(seed)
		nE, nT, nU := 18, 9, 40
		events := make([]core.Event, nE)
		for i := range events {
			events[i] = core.Event{Location: i, Resources: 1}
		}
		competing := make([]core.Competing, nT)
		for i := range competing {
			competing[i] = core.Competing{Interval: i}
		}
		inst, err := core.NewInstance(events, make([]core.Interval, nT), competing, nU, 100)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < nU; u++ {
			for e := 0; e < nE; e++ {
				inst.SetInterest(u, e, 0.2+0.8*r.Float64())
			}
			for c := 0; c < nT; c++ {
				inst.SetCompetingInterest(u, c, 0.01*r.Float64()) // weak competition
			}
			for tv := 0; tv < nT; tv++ {
				inst.SetActivity(u, tv, r.Float64())
			}
		}
		ra, _ := (ALG{}).Schedule(inst, 8) // k < |T|: single HOR layer
		rh, _ := (HOR{}).Schedule(inst, 8)
		ga, gh := ra.Schedule.Assignments(), rh.Schedule.Assignments()
		if len(ga) != len(gh) {
			t.Fatalf("seed %d: lengths differ", seed)
		}
		for i := range ga {
			if ga[i] != gh[i] {
				t.Fatalf("seed %d: selection %d differs: ALG %+v, HOR %+v", seed, i, ga[i], gh[i])
			}
		}
	}
}

// Single interval: every selection staleness-cascades (M empties each step),
// exercising INC's Φ-unavailable bootstrap path.
func TestSingleIntervalBootstrap(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		inst := randomInstance(seed, 10, 1, 2, 20, 10)
		ra, _ := (ALG{}).Schedule(inst, 5)
		ri, _ := (INC{}).Schedule(inst, 5)
		ga, gi := ra.Schedule.Assignments(), ri.Schedule.Assignments()
		if len(ga) != len(gi) {
			t.Fatalf("seed %d: lengths differ", seed)
		}
		for i := range ga {
			if ga[i] != gi[i] {
				t.Fatalf("seed %d: selection %d differs", seed, i)
			}
		}
	}
}

// The equivalence propositions must survive the Section 2.1 extensions:
// user weights scale σ per user and costs shift scores per event, both
// preserving the stale-score upper-bound property that INC and HOR-I rely
// on. The profit variant also exercises negative scores.
func TestEquivalencesUnderExtensions(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		inst := randomInstance(seed, 14, 4, 5, 20, 6)
		weights := make([]float64, 20)
		for i := range weights {
			weights[i] = 0.2 + float64((int(seed)+i)%5)*0.4
		}
		costs := make([]float64, 14)
		for i := range costs {
			costs[i] = float64((int(seed)+i)%6) * 0.8 // large enough for negative scores
		}
		opts := core.ScorerOptions{UserWeights: weights, EventCost: costs}
		ra, err := (ALG{Opts: opts}).Schedule(inst, 10)
		if err != nil {
			t.Fatal(err)
		}
		ri, err := (INC{Opts: opts}).Schedule(inst, 10)
		if err != nil {
			t.Fatal(err)
		}
		ga, gi := ra.Schedule.Assignments(), ri.Schedule.Assignments()
		if len(ga) != len(gi) {
			t.Fatalf("seed %d: INC/ALG lengths differ under extensions", seed)
		}
		for i := range ga {
			if ga[i] != gi[i] {
				t.Fatalf("seed %d: INC/ALG selection %d differs under extensions", seed, i)
			}
		}
		rh, err := (HOR{Opts: opts}).Schedule(inst, 10)
		if err != nil {
			t.Fatal(err)
		}
		rhi, err := (HORI{Opts: opts}).Schedule(inst, 10)
		if err != nil {
			t.Fatal(err)
		}
		gh, ghi := rh.Schedule.Assignments(), rhi.Schedule.Assignments()
		if len(gh) != len(ghi) {
			t.Fatalf("seed %d: HOR/HOR-I lengths differ under extensions", seed)
		}
		for i := range gh {
			if gh[i] != ghi[i] {
				t.Fatalf("seed %d: HOR/HOR-I selection %d differs under extensions", seed, i)
			}
		}
	}
}

// Bad extension options must surface as errors from every scheduler.
func TestSchedulersRejectBadOptions(t *testing.T) {
	inst := core.RunningExample()
	bad := core.ScorerOptions{UserWeights: []float64{1}} // 2 users
	for _, name := range Names() {
		s, err := NewWithOptions(name, 1, bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Schedule(inst, 1); err == nil {
			t.Errorf("%s accepted bad options", name)
		}
	}
}

// Profit-oriented selection actually changes behaviour: making the greedy
// favourite prohibitively expensive must push it out of the schedule.
func TestCostChangesSelection(t *testing.T) {
	inst := core.RunningExample()
	plain, err := (ALG{}).Schedule(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Plain greedy picks e4 first (score 0.656). Price e4 out.
	costs := []float64{0, 0, 0, 10}
	priced, err := (ALG{Opts: core.ScorerOptions{EventCost: costs}}).Schedule(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Schedule.Assignments()[0].Event != 3 {
		t.Fatal("premise broken: plain greedy no longer starts with e4")
	}
	for _, a := range priced.Schedule.Assignments() {
		if a.Event == 3 {
			t.Fatal("e4 scheduled despite prohibitive cost")
		}
	}
	if priced.Utility >= plain.Utility {
		t.Error("profit utility should drop when the best event is priced out")
	}
}

// Extend from an empty schedule must reproduce ALG exactly, and extending a
// prefix of ALG's schedule must complete it identically (greedy's selections
// depend only on the schedule state, not on how it was reached).
func TestExtendMatchesALG(t *testing.T) {
	inst := randomInstance(5, 14, 4, 5, 25, 6)
	full, err := (ALG{}).Schedule(inst, 8)
	if err != nil {
		t.Fatal(err)
	}
	fromEmpty, err := Extend(inst, core.NewSchedule(inst), 8, core.ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fa, ea := full.Schedule.Assignments(), fromEmpty.Schedule.Assignments()
	if len(fa) != len(ea) {
		t.Fatalf("lengths differ: %d vs %d", len(fa), len(ea))
	}
	for i := range fa {
		if fa[i] != ea[i] {
			t.Fatalf("selection %d differs: %+v vs %+v", i, fa[i], ea[i])
		}
	}
	// Prefix + Extend = full schedule.
	prefix := core.NewSchedule(inst)
	for _, a := range fa[:3] {
		if err := prefix.Assign(a.Event, a.Interval); err != nil {
			t.Fatal(err)
		}
	}
	rest, err := Extend(inst, prefix, 5, core.ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ra := rest.Schedule.Assignments()
	if len(ra) != len(fa) {
		t.Fatalf("extended schedule has %d assignments, want %d", len(ra), len(fa))
	}
	for i := range fa {
		if ra[i] != fa[i] {
			t.Fatalf("extended selection %d differs: %+v vs %+v", i, ra[i], fa[i])
		}
	}
	// The base schedule must be untouched.
	if prefix.Len() != 3 {
		t.Fatalf("base schedule mutated: %d assignments", prefix.Len())
	}
}

func TestExtendValidation(t *testing.T) {
	inst := randomInstance(6, 8, 3, 3, 15, 5)
	other := randomInstance(7, 8, 3, 3, 15, 5)
	if _, err := Extend(inst, core.NewSchedule(inst), 0, core.ScorerOptions{}); err == nil {
		t.Error("extra=0 accepted")
	}
	if _, err := Extend(inst, nil, 2, core.ScorerOptions{}); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := Extend(inst, core.NewSchedule(other), 2, core.ScorerOptions{}); err == nil {
		t.Error("cross-instance base accepted")
	}
	if _, err := Extend(inst, core.NewSchedule(inst), 2, core.ScorerOptions{UserWeights: []float64{1}}); err == nil {
		t.Error("bad options accepted")
	}
}

// Extending past feasibility stops gracefully with the maximum feasible
// schedule.
func TestExtendExhaustsFeasibility(t *testing.T) {
	events := []core.Event{{Location: 0, Resources: 1}, {Location: 0, Resources: 1}}
	inst, err := core.NewInstance(events, []core.Interval{{}}, nil, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extend(inst, core.NewSchedule(inst), 5, core.ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Len() != 1 {
		t.Fatalf("scheduled %d, only 1 feasible", res.Schedule.Len())
	}
}
