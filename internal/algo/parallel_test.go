package algo

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/score"
)

// The engine contract: with parallel scoring enabled, every algorithm must
// return the very same result as sequentially — identical selection sequence,
// bit-identical utility, identical work counters. These tests cover both
// shard regimes: |U| inside one user shard and |U| spanning several.
func parallelEqualityInstances() []*core.Instance {
	return []*core.Instance{
		// Big frontier (30×8 = 240 candidates × 300 users) — engages the
		// batch fan-out while all users fit one shard.
		randomInstance(41, 30, 8, 6, 300, 8),
		// Multi-shard users (10000 > chunk 8192) with a smaller frontier.
		randomInstance(42, 12, 5, 4, 10_000, 5),
	}
}

func TestParallelSchedulersMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard instance allocates ~1M floats")
	}
	for i, inst := range parallelEqualityInstances() {
		for _, k := range []int{3, 9} {
			for _, name := range Names() {
				seq, err := NewWithOptions(name, 7, core.ScorerOptions{})
				if err != nil {
					t.Fatal(err)
				}
				par, err := NewWithOptions(name, 7, core.ScorerOptions{Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
				rs, err := seq.Schedule(inst, k)
				if err != nil {
					t.Fatalf("%s sequential: %v", name, err)
				}
				rp, err := par.Schedule(inst, k)
				if err != nil {
					t.Fatalf("%s parallel: %v", name, err)
				}
				if rs.Utility != rp.Utility {
					t.Errorf("inst %d %s k=%d: utility %v sequential vs %v parallel", i, name, k, rs.Utility, rp.Utility)
				}
				if rs.Counters != rp.Counters {
					t.Errorf("inst %d %s k=%d: counters %+v sequential vs %+v parallel", i, name, k, rs.Counters, rp.Counters)
				}
				gs, gp := rs.Schedule.Assignments(), rp.Schedule.Assignments()
				if len(gs) != len(gp) {
					t.Fatalf("inst %d %s k=%d: %d selections sequential vs %d parallel", i, name, k, len(gs), len(gp))
				}
				for j := range gs {
					if gs[j] != gp[j] {
						t.Errorf("inst %d %s k=%d: selection %d = %+v sequential vs %+v parallel", i, name, k, j, gs[j], gp[j])
					}
				}
			}
		}
	}
}

// A shared engine must be reusable across algorithms and runs without
// changing any result, and must reject foreign instances.
func TestSharedEngineAcrossAlgorithms(t *testing.T) {
	inst := randomInstance(43, 18, 6, 4, 120, 6)
	en, err := score.New(inst, core.ScorerOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	for _, name := range Names() {
		private, err := NewWithOptions(name, 5, core.ScorerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		shared, err := NewWithEngine(name, 5, en)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := private.Schedule(inst, 6)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ { // twice: engine state must not leak between runs
			rsh, err := shared.Schedule(inst, 6)
			if err != nil {
				t.Fatal(err)
			}
			if rp.Utility != rsh.Utility || rp.Counters != rsh.Counters {
				t.Errorf("%s run %d: shared engine diverged (Ω %v vs %v, counters %+v vs %+v)",
					name, run, rp.Utility, rsh.Utility, rp.Counters, rsh.Counters)
			}
		}
	}

	other := randomInstance(44, 6, 3, 2, 40, 4)
	s, err := NewWithEngine("ALG", 1, en)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(other, 2); err == nil {
		t.Fatal("scheduling a foreign instance through a pinned engine must fail")
	}
}

// Extend must match its sequential self through both the options path and a
// shared engine.
func TestExtendParallelMatchesSequential(t *testing.T) {
	inst := randomInstance(45, 20, 6, 5, 200, 6)
	base := core.NewSchedule(inst)
	if err := base.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	rs, err := Extend(inst, base, 5, core.ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Extend(inst, base, 5, core.ScorerOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Utility != rp.Utility || rs.Counters != rp.Counters {
		t.Fatalf("Extend diverged: Ω %v vs %v, counters %+v vs %+v", rs.Utility, rp.Utility, rs.Counters, rp.Counters)
	}
	en, err := score.New(inst, core.ScorerOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	re, err := ExtendWithEngine(context.Background(), en, base, 5)
	if err != nil {
		t.Fatal(err)
	}
	if re.Utility != rs.Utility || re.Counters != rs.Counters {
		t.Fatalf("ExtendWithEngine diverged: Ω %v vs %v", re.Utility, rs.Utility)
	}
}
