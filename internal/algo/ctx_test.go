package algo

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// ctxTestInstance builds an instance large enough that every scheduler makes
// several selections with real scoring work between them.
func ctxTestInstance(t *testing.T) *core.Instance {
	t.Helper()
	inst, err := dataset.Generate(dataset.DefaultConfig(10, 300, dataset.Zipf2, 5))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestScheduleCtxAlreadyCancelled pins the promptness contract: a cancelled
// context returns context.Canceled before any scheduling work starts.
func TestScheduleCtxAlreadyCancelled(t *testing.T) {
	inst := ctxTestInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range schedulers() {
		res, err := s.ScheduleCtx(ctx, inst, 5)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: cancelled context returned (%v, %v), want context.Canceled", s.Name(), res, err)
		}
		if res != nil {
			t.Errorf("%s: cancelled run still produced a result", s.Name())
		}
	}
}

// TestScheduleCtxMidRunCancel cancels each scheduler from its own progress
// callback after two selections: the run must stop with context.Canceled
// well before completing all k selections.
func TestScheduleCtxMidRunCancel(t *testing.T) {
	inst := ctxTestInstance(t)
	const k = 10
	for _, s := range schedulers() {
		ctx, cancel := context.WithCancel(context.Background())
		maxMade := 0
		ctx = WithProgress(ctx, func(made, total int) {
			if total != k {
				t.Errorf("%s: progress total %d, want %d", s.Name(), total, k)
			}
			if made > maxMade {
				maxMade = made
			}
			if made == 2 {
				cancel()
			}
		})
		res, err := s.ScheduleCtx(ctx, inst, k)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: mid-run cancel returned (%v, %v), want context.Canceled", s.Name(), res, err)
			continue
		}
		if maxMade >= k {
			t.Errorf("%s: completed all %d selections despite cancellation at 2", s.Name(), maxMade)
		}
	}
}

// TestScheduleCtxMatchesSchedule pins the thin-wrapper contract: with a
// background context, ScheduleCtx and Schedule produce bitwise-identical
// schedules, utilities and work counters.
func TestScheduleCtxMatchesSchedule(t *testing.T) {
	inst := ctxTestInstance(t)
	for _, s := range schedulers() {
		plain, err := s.Schedule(inst, 6)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		ctxed, err := s.ScheduleCtx(context.Background(), inst, 6)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if plain.Utility != ctxed.Utility {
			t.Errorf("%s: utility drifted: Schedule %v, ScheduleCtx %v", s.Name(), plain.Utility, ctxed.Utility)
		}
		if plain.ScoreEvals != ctxed.ScoreEvals || plain.Examined != ctxed.Examined {
			t.Errorf("%s: counters drifted: (%d, %d) vs (%d, %d)", s.Name(),
				plain.ScoreEvals, plain.Examined, ctxed.ScoreEvals, ctxed.Examined)
		}
		pa, ca := plain.Schedule.Assignments(), ctxed.Schedule.Assignments()
		if len(pa) != len(ca) {
			t.Fatalf("%s: schedule lengths differ: %d vs %d", s.Name(), len(pa), len(ca))
		}
		for i := range pa {
			if pa[i] != ca[i] {
				t.Errorf("%s: assignment %d drifted: %v vs %v", s.Name(), i, pa[i], ca[i])
			}
		}
	}
}

// TestScheduleCtxProgressMonotonic asserts the progress callback reports
// every selection exactly once, in order, ending at the schedule's length.
func TestScheduleCtxProgressMonotonic(t *testing.T) {
	inst := ctxTestInstance(t)
	for _, s := range schedulers() {
		var seen []int
		ctx := WithProgress(context.Background(), func(made, total int) {
			seen = append(seen, made)
		})
		res, err := s.ScheduleCtx(ctx, inst, 6)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(seen) != res.Schedule.Len() {
			t.Fatalf("%s: %d progress callbacks for %d selections", s.Name(), len(seen), res.Schedule.Len())
		}
		for i, made := range seen {
			if made != i+1 {
				t.Errorf("%s: progress callback %d reported %d selections, want %d", s.Name(), i, made, i+1)
			}
		}
	}
}

// TestScheduleCtxDeadline covers the second cancellation flavor: an expired
// deadline surfaces as context.DeadlineExceeded.
func TestScheduleCtxDeadline(t *testing.T) {
	inst := ctxTestInstance(t)
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	if _, err := (ALG{}).ScheduleCtx(ctx, inst, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}
}
