package algo

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/score"
)

// HOR is the Horizontal Assignment algorithm (Section 3.3, Algorithm 2).
//
// HOR selects assignments in layers: in each iteration it recomputes the
// scores of all valid assignments once, then selects (up to) one assignment
// per interval — the interval's top — without any mid-layer recomputation.
// Because at most one event joins each interval per layer, skipping the
// updates inside a layer costs little solution quality (the paper reports
// identical utility to ALG in >70% of runs, ≤1.3% difference otherwise)
// while eliminating ALG's per-selection update sweep entirely when k ≤ |T|.
type HOR struct {
	// Opts enables the Section 2.1 problem extensions.
	Opts core.ScorerOptions
	// Engine, when set, is the shared scoring engine to use; otherwise a
	// private engine is built from Opts for the run.
	Engine *score.Engine
}

// Name implements Scheduler.
func (HOR) Name() string { return "HOR" }

// Schedule implements Scheduler.
func (a HOR) Schedule(inst *core.Instance, k int) (*Result, error) {
	return a.ScheduleCtx(context.Background(), inst, k)
}

// ScheduleCtx implements Scheduler.
func (a HOR) ScheduleCtx(ctx context.Context, inst *core.Instance, k int) (*Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	g := newGuard(ctx, k)
	if err := g.point(); err != nil {
		return nil, err
	}
	start := time.Now()
	en, release, err := engineFor(a.Engine, inst, a.Opts)
	if err != nil {
		return nil, err
	}
	defer release()
	s := core.NewSchedule(inst)
	var c Counters

	nE, nT := inst.NumEvents(), inst.NumIntervals()
	lists := make([][]item, nT)
	cands := make([]score.Candidate, 0, nE*nT)
	vals := make([]float64, nE*nT)
	starts := make([]int, nT+1)
	for s.Len() < k {
		// Layer start: regenerate and score every valid assignment
		// (Algorithm 2, lines 3-8). The whole layer frontier — every valid
		// assignment across every interval — is one batch fan-out.
		cands = cands[:0]
		for t := 0; t < nT; t++ {
			starts[t] = len(cands)
			for e := 0; e < nE; e++ {
				if !s.Valid(e, t) {
					continue
				}
				cands = append(cands, score.Candidate{Event: e, Interval: t})
			}
		}
		starts[nT] = len(cands)
		if err := en.ScoreBatch(g.ctx, s, cands, vals); err != nil {
			return nil, err
		}
		c.ScoreEvals += int64(len(cands))
		if err := g.batch(len(cands)); err != nil {
			return nil, err
		}
		for t := 0; t < nT; t++ {
			items := lists[t][:0]
			for i := starts[t]; i < starts[t+1]; i++ {
				items = append(items, item{e: int32(cands[i].Event), score: vals[i], updated: true})
			}
			sortItems(items)
			lists[t] = items
		}
		assigned, err := horSelectLayer(s, lists, k, &c, g)
		if err != nil {
			return nil, err
		}
		if assigned == 0 {
			break // no valid assignment anywhere: k is unreachable
		}
	}
	return finish(en, s, c, start), nil
}

// horSelectLayer runs the horizontal selection of one layer (Algorithm 2,
// lines 9-14): a per-interval cursor M starts at each list head; the global
// top of M is popped; if its event was taken by an earlier pop in this layer
// the cursor advances to the interval's next available event, otherwise the
// assignment is made and the interval is done for the layer. Returns the
// number of assignments made.
func horSelectLayer(s *core.Schedule, lists [][]item, k int, c *Counters, g *guard) (int, error) {
	nT := len(lists)
	pos := make([]int, nT) // cursor into each interval's list
	// live[t] tells whether interval t still holds a candidate in M.
	live := make([]bool, nT)
	for t := 0; t < nT; t++ {
		live[t] = len(lists[t]) > 0
	}
	made := 0
	for s.Len() < k {
		// Pop the global top of M.
		bestT := -1
		for t := 0; t < nT; t++ {
			if !live[t] {
				continue
			}
			it := lists[t][pos[t]]
			if bestT < 0 || betterFull(it.score, it.e, t, lists[bestT][pos[bestT]].score, lists[bestT][pos[bestT]].e, bestT) {
				bestT = t
			}
		}
		if bestT < 0 {
			break // M exhausted
		}
		c.Examined++
		it := lists[bestT][pos[bestT]]
		if _, taken := s.AssignedInterval(int(it.e)); !taken {
			if err := s.Assign(int(it.e), bestT); err != nil {
				// Entries were valid at layer start and the interval
				// has not been touched since; this cannot happen.
				panic("algo: HOR layer assignment failed: " + err.Error())
			}
			live[bestT] = false // one assignment per interval per layer
			made++
			if err := g.selected(s.Len()); err != nil {
				return made, err
			}
			continue
		}
		// The event was claimed by another interval this layer: advance
		// to the interval's next entry whose event is still available
		// (Algorithm 2, lines 13-14).
		p := pos[bestT] + 1
		for p < len(lists[bestT]) {
			c.Examined++
			if _, taken := s.AssignedInterval(int(lists[bestT][p].e)); !taken {
				break
			}
			p++
		}
		pos[bestT] = p
		if p == len(lists[bestT]) {
			live[bestT] = false
		}
	}
	return made, nil
}
