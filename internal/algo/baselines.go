package algo

import (
	"context"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/score"
)

// TOP is the first baseline of the evaluation (Section 4.1): it scores every
// assignment once against the empty schedule and greedily consumes the
// global top-k valid assignments without ever recomputing a score. TOP
// therefore performs the minimum possible number of score computations
// (|E|·|T|) — it is the lower envelope of the computation plots — but its
// utility suffers because it happily piles events into the few
// highest-yield intervals, which then cannibalize each other's attendance.
type TOP struct {
	// Opts enables the Section 2.1 problem extensions.
	Opts core.ScorerOptions
	// Engine, when set, is the shared scoring engine to use; otherwise a
	// private engine is built from Opts for the run.
	Engine *score.Engine
}

// Name implements Scheduler.
func (TOP) Name() string { return "TOP" }

// Schedule implements Scheduler.
func (a TOP) Schedule(inst *core.Instance, k int) (*Result, error) {
	return a.ScheduleCtx(context.Background(), inst, k)
}

// ScheduleCtx implements Scheduler.
func (a TOP) ScheduleCtx(ctx context.Context, inst *core.Instance, k int) (*Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	g := newGuard(ctx, k)
	if err := g.point(); err != nil {
		return nil, err
	}
	start := time.Now()
	en, release, err := engineFor(a.Engine, inst, a.Opts)
	if err != nil {
		return nil, err
	}
	defer release()
	s := core.NewSchedule(inst)
	var c Counters

	nE, nT := inst.NumEvents(), inst.NumIntervals()
	type pair struct {
		item
		t int
	}
	// TOP's entire score work is one frontier: every (event, interval) pair
	// against the empty schedule, scored in a single batch fan-out.
	cands := make([]score.Candidate, 0, nE*nT)
	for e := 0; e < nE; e++ {
		for t := 0; t < nT; t++ {
			cands = append(cands, score.Candidate{Event: e, Interval: t})
		}
	}
	vals := make([]float64, len(cands))
	if err := en.ScoreBatch(g.ctx, s, cands, vals); err != nil {
		return nil, err
	}
	c.ScoreEvals += int64(len(cands))
	if err := g.batch(len(cands)); err != nil {
		return nil, err
	}
	all := make([]pair, 0, nE*nT)
	for i, cd := range cands {
		all = append(all, pair{item{e: int32(cd.Event), score: vals[i]}, cd.Interval})
	}
	sort.Slice(all, func(i, j int) bool {
		return betterFull(all[i].score, all[i].e, all[i].t, all[j].score, all[j].e, all[j].t)
	})
	for _, p := range all {
		if s.Len() >= k {
			break
		}
		c.Examined++
		if err := g.step(); err != nil {
			return nil, err
		}
		if s.Valid(int(p.e), p.t) {
			if err := s.Assign(int(p.e), p.t); err != nil {
				return nil, err
			}
			if err := g.selected(s.Len()); err != nil {
				return nil, err
			}
		}
	}
	return finish(en, s, c, start), nil
}

// RAND is the second baseline (Section 4.1): it assigns events to intervals
// uniformly at random, subject only to validity. It performs no score
// computations at all and anchors the bottom of the utility plots.
type RAND struct {
	// Seed drives the deterministic random stream; two RAND runs with the
	// same seed and instance produce the same schedule.
	Seed uint64
	// Opts enables the Section 2.1 problem extensions (they only affect
	// the reported utility: RAND never scores assignments).
	Opts core.ScorerOptions
	// Engine, when set, is the shared scoring engine; RAND only uses it to
	// report the final utility.
	Engine *score.Engine
}

// Name implements Scheduler.
func (RAND) Name() string { return "RAND" }

// Schedule implements Scheduler.
func (r RAND) Schedule(inst *core.Instance, k int) (*Result, error) {
	return r.ScheduleCtx(context.Background(), inst, k)
}

// ScheduleCtx implements Scheduler.
func (r RAND) ScheduleCtx(ctx context.Context, inst *core.Instance, k int) (*Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	g := newGuard(ctx, k)
	if err := g.point(); err != nil {
		return nil, err
	}
	start := time.Now()
	en, release, err := engineFor(r.Engine, inst, r.Opts)
	if err != nil {
		return nil, err
	}
	defer release()
	s := core.NewSchedule(inst)
	var c Counters

	nE, nT := inst.NumEvents(), inst.NumIntervals()
	// Walk a random permutation of all pairs so the schedule is uniform
	// over valid possibilities yet termination is certain even when k
	// exceeds the number of feasible assignments.
	perm := randx.New(r.Seed).Perm(nE * nT)
	for _, idx := range perm {
		if s.Len() >= k {
			break
		}
		e, t := idx/nT, idx%nT
		c.Examined++
		if err := g.step(); err != nil {
			return nil, err
		}
		if s.Valid(e, t) {
			if err := s.Assign(e, t); err != nil {
				return nil, err
			}
			if err := g.selected(s.Len()); err != nil {
				return nil, err
			}
		}
	}
	return finish(en, s, c, start), nil
}
