package algo

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/score"
)

// ResolveInfo reports how a warm re-solve was answered.
type ResolveInfo struct {
	// Replayed is true when the previous schedule was verified pick by pick
	// and returned directly; false means the scheduler ran in full (on the
	// warm engine, so the initial frontier still comes from the grid cache).
	Replayed bool
}

// Resolve re-solves an instance after a mutation, reusing the engine en (a
// warm delta rebuild when the server's engine cache could retire one) and,
// when prev is non-nil, the previous version's schedule.
//
// Two modes, selected by replay:
//
//   - Exact (replay=false, the server's default and the mode the CI equality
//     gate pins): the named scheduler simply runs against en. Its output AND
//     its work counters are bit-identical to a cold solve of the same
//     version, because all reuse lives below the scheduler — the engine's
//     delta-rebuilt accumulators and its empty-schedule grid serve the same
//     bits a cold engine would compute, and schedulers account ScoreEvals
//     for every candidate whether the engine computed or remembered it.
//
//   - Verified replay (replay=true): for the greedy family (ALG, INC — the
//     same selection sequence by Proposition 3) the previous schedule is
//     replayed one pick at a time, each pick proven still the greedy argmax
//     using Proposition 1 (empty-schedule scores bound scores under any
//     partial schedule, and the bound is exact for intervals the partial
//     schedule has not touched). A proven replay returns the bit-identical
//     schedule and utility while evaluating only the picked assignments and
//     the rare bound-beating challengers — its Counters report that smaller
//     verification work, not the cold run's. Any unproven pick, a non-greedy
//     scheduler (HOR/HOR-I layer selection is not pickwise-verifiable this
//     way; TOP/RAND are cheap anyway), or a short prev falls back to the
//     exact mode.
func Resolve(ctx context.Context, name string, seed uint64, en *score.Engine, k int, prev []core.Assignment, replay bool) (*Result, ResolveInfo, error) {
	if k <= 0 {
		return nil, ResolveInfo{}, ErrBadK
	}
	if replay && prev != nil && (name == "ALG" || name == "INC") {
		if res, err := replayGreedy(ctx, en, k, prev); err != nil {
			return nil, ResolveInfo{}, err
		} else if res != nil {
			return res, ResolveInfo{Replayed: true}, nil
		}
	}
	s, err := NewWithEngine(name, seed, en)
	if err != nil {
		return nil, ResolveInfo{}, err
	}
	res, err := s.ScheduleCtx(ctx, en.Instance(), k)
	return res, ResolveInfo{}, err
}

// replayGreedy verifies that prev is still the greedy selection sequence on
// en's (mutated) instance and returns its Result, or (nil, nil) when any
// pick cannot be proven so the caller falls back to a full run.
//
// Soundness: the greedy family picks argmax over valid assignments under
// betterFull. For a candidate in an interval the current partial schedule
// has not assigned into, score(e,t|S) = score(e,t|∅) exactly (Eq. 4 only
// reads S's assignments sharing the interval); for a touched interval the
// empty-schedule score is an upper bound (Proposition 1). So a pick (e*,t*)
// with exact score x is proven when no other valid candidate's bound beats x
// under the tie-break — and a bound-beating candidate in a touched interval
// is settled by computing its exact score. Only an exact winner disproves
// the pick.
func replayGreedy(ctx context.Context, en *score.Engine, k int, prev []core.Assignment) (*Result, error) {
	if len(prev) > k {
		return nil, nil // smaller k than the previous solve: just re-run
	}
	g := newGuard(ctx, k)
	if err := g.point(); err != nil {
		return nil, err
	}
	start := time.Now()
	inst := en.Instance()
	nE, nT := inst.NumEvents(), inst.NumIntervals()
	s := core.NewSchedule(inst)
	var c Counters

	// Empty-schedule bounds for every pair, one batch. On a warm engine this
	// is served from the grid (no computed evals); on a cold one it fills
	// the grid for everything after it. Either way it is a table read, not
	// verification work, so it is charged to neither counter — replay-mode
	// Counters measure exactly the per-pick proof cost (the engine's own
	// stats still account any computed fill).
	bounds := make([]float64, nE*nT)
	cands := make([]score.Candidate, 0, nE*nT)
	for e := 0; e < nE; e++ {
		for t := 0; t < nT; t++ {
			cands = append(cands, score.Candidate{Event: e, Interval: t})
		}
	}
	if err := en.ScoreBatch(g.ctx, s, cands, bounds); err != nil {
		return nil, err
	}
	if err := g.batch(len(cands)); err != nil {
		return nil, err
	}

	touched := make([]bool, nT)
	for _, a := range prev {
		if err := g.point(); err != nil {
			return nil, err
		}
		if !s.Valid(a.Event, a.Interval) {
			return nil, nil // mutation broke feasibility of the old pick
		}
		x := en.Score(s, a.Event, a.Interval)
		c.ScoreEvals++
		if err := g.step(); err != nil {
			return nil, err
		}
		for e := 0; e < nE; e++ {
			if _, assigned := s.AssignedInterval(e); assigned {
				continue
			}
			for t := 0; t < nT; t++ {
				if e == a.Event && t == a.Interval {
					continue
				}
				c.Examined++
				if !s.Feasible(e, t) {
					continue
				}
				ub := bounds[e*nT+t]
				if !betterFull(ub, int32(e), t, x, int32(a.Event), a.Interval) {
					continue // bound cannot beat the pick: candidate ruled out
				}
				if !touched[t] {
					return nil, nil // bound is exact here: the pick changed
				}
				// Touched interval: the bound is slack. Settle exactly.
				exact := en.Score(s, e, t)
				c.ScoreEvals++
				if err := g.step(); err != nil {
					return nil, err
				}
				if betterFull(exact, int32(e), t, x, int32(a.Event), a.Interval) {
					return nil, nil // a genuinely better candidate exists
				}
			}
		}
		if err := s.Assign(a.Event, a.Interval); err != nil {
			return nil, err
		}
		touched[a.Interval] = true
		if err := g.selected(s.Len()); err != nil {
			return nil, err
		}
	}
	if s.Len() < k {
		// The previous run stopped early (k unreachable then). Whether it
		// still is depends on feasibility we have not verified; re-run.
		for e := 0; e < nE; e++ {
			for t := 0; t < nT; t++ {
				c.Examined++
				if s.Valid(e, t) {
					return nil, nil
				}
			}
		}
	}
	return finish(en, s, c, start), nil
}
