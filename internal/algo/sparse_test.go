package algo

import (
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

// sparseDensePair builds the same random low-density instance twice — dense
// and sparse — from identical row streams.
func sparseDensePair(t *testing.T, seed uint64, nE, nT, nC, nU int, density float64) (dense, sparse *core.Instance) {
	t.Helper()
	build := func(rep core.Rep) *core.Instance {
		r := randx.New(seed)
		events := make([]core.Event, nE)
		for i := range events {
			events[i] = core.Event{Location: r.Intn(max(1, nE/2)), Resources: float64(r.IntRange(1, 3))}
		}
		intervals := make([]core.Interval, nT)
		competing := make([]core.Competing, nC)
		for i := range competing {
			competing[i] = core.Competing{Interval: r.Intn(nT)}
		}
		b, err := core.NewBuilder(events, intervals, competing, nU, 7, rep)
		if err != nil {
			t.Fatal(err)
		}
		row := make([]float32, nE+nC)
		act := make([]float32, nT)
		for u := 0; u < nU; u++ {
			for i := range row {
				row[i] = 0
				if r.Float64() < density {
					row[i] = float32(r.Range(0.05, 1))
				}
			}
			for i := range act {
				act[i] = float32(r.Float64())
			}
			if err := b.AddUser(row, act); err != nil {
				t.Fatal(err)
			}
		}
		inst, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	return build(core.RepDense), build(core.RepSparse)
}

// TestSparseDenseSchedulersBitIdentical is the sparse-representation
// acceptance gate: all six schedulers must produce bit-identical schedules,
// utilities and work counters on sparse vs dense builds of the same
// instance, at several worker counts (sequential, mid, oversubscribed) and
// in both engine shard regimes (|U| within one 8192-user shard and spanning
// several).
func TestSparseDenseSchedulersBitIdentical(t *testing.T) {
	type shape struct {
		seed           uint64
		nE, nT, nC, nU int
		density        float64
	}
	shapes := []shape{
		{seed: 61, nE: 24, nT: 8, nC: 10, nU: 400, density: 0.07},
	}
	if !testing.Short() {
		// Multi-shard users: 10_000 > the engine's 8192-user shard.
		shapes = append(shapes, shape{seed: 62, nE: 10, nT: 4, nC: 5, nU: 10_000, density: 0.04})
	}
	for _, sh := range shapes {
		dense, sparse := sparseDensePair(t, sh.seed, sh.nE, sh.nT, sh.nC, sh.nU, sh.density)
		for _, workers := range []int{0, 3, 8} {
			for _, name := range Names() {
				run := func(inst *core.Instance) *Result {
					s, err := NewWithOptions(name, 7, core.ScorerOptions{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					res, err := s.Schedule(inst, 6)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					return res
				}
				rd, rs := run(dense), run(sparse)
				if rd.Utility != rs.Utility {
					t.Errorf("seed %d %s workers=%d: utility %v dense vs %v sparse",
						sh.seed, name, workers, rd.Utility, rs.Utility)
				}
				if rd.Counters != rs.Counters {
					t.Errorf("seed %d %s workers=%d: counters %+v dense vs %+v sparse",
						sh.seed, name, workers, rd.Counters, rs.Counters)
				}
				gd, gs := rd.Schedule.Assignments(), rs.Schedule.Assignments()
				if len(gd) != len(gs) {
					t.Fatalf("seed %d %s workers=%d: %d selections dense vs %d sparse",
						sh.seed, name, workers, len(gd), len(gs))
				}
				for j := range gd {
					if gd[j] != gs[j] {
						t.Errorf("seed %d %s workers=%d: selection %d = %+v dense vs %+v sparse",
							sh.seed, name, workers, j, gd[j], gs[j])
					}
				}
			}
		}
	}
}
