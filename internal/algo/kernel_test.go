package algo

import (
	"testing"

	"repro/internal/core"
)

// TestKernelVariantSchedulersBitIdentical is the kernel-dispatch acceptance
// gate: every scheduler must produce bit-identical schedules, utilities and
// work counters across the exact kernel variants — scalar and blocked on the
// dense representation, the representation-picked sparse kernel on the sparse
// build of the same instance — at sequential, mid and oversubscribed worker
// counts. (The inexact simd variant is tolerance-gated in internal/core, not
// here: Exact() == false keeps it out of bit-identity gates by contract.)
func TestKernelVariantSchedulersBitIdentical(t *testing.T) {
	type build struct {
		label  string
		sparse bool
		kernel string
	}
	builds := []build{
		{"dense/scalar", false, core.KernelScalar},
		{"dense/blocked", false, core.KernelBlocked},
		{"sparse/auto", true, core.KernelAuto},
	}
	type regime struct {
		nU      int
		workers []int
	}
	regimes := []regime{{500, []int{0, 3, 8}}}
	if !testing.Short() {
		// One multi-shard regime so the kernels' shard-offset paths engage.
		regimes = append(regimes, regime{10_000, []int{0, 8}})
	}
	for _, rg := range regimes {
		dense, sparse := sparseDensePair(t, 71, 14, 5, 4, rg.nU, 0.15)
		k := 7
		for _, name := range Names() {
			ref, err := NewWithOptions(name, 7, core.ScorerOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rr, err := ref.Schedule(dense, k)
			if err != nil {
				t.Fatalf("%s reference: %v", name, err)
			}
			for _, b := range builds {
				inst := dense
				if b.sparse {
					inst = sparse
				}
				for _, workers := range rg.workers {
					s, err := NewWithOptions(name, 7, core.ScorerOptions{Workers: workers, Kernel: b.kernel})
					if err != nil {
						t.Fatal(err)
					}
					rv, err := s.Schedule(inst, k)
					if err != nil {
						t.Fatalf("%s %s workers=%d: %v", name, b.label, workers, err)
					}
					if rv.Utility != rr.Utility {
						t.Errorf("|U|=%d %s %s workers=%d: Ω %x vs reference %x",
							rg.nU, name, b.label, workers, rv.Utility, rr.Utility)
					}
					if rv.Counters != rr.Counters {
						t.Errorf("|U|=%d %s %s workers=%d: counters %+v vs %+v",
							rg.nU, name, b.label, workers, rv.Counters, rr.Counters)
					}
					ga, gr := rv.Schedule.Assignments(), rr.Schedule.Assignments()
					if len(ga) != len(gr) {
						t.Fatalf("|U|=%d %s %s workers=%d: %d selections vs %d",
							rg.nU, name, b.label, workers, len(ga), len(gr))
					}
					for j := range ga {
						if ga[j] != gr[j] {
							t.Errorf("|U|=%d %s %s workers=%d: selection %d = %+v vs %+v",
								rg.nU, name, b.label, workers, j, ga[j], gr[j])
						}
					}
				}
			}
		}
	}
}
