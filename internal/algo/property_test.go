package algo

// End-to-end property battery: testing/quick drives randomized problem
// configurations (sizes, constraint tightness, distribution shapes, k vs
// |T| regimes) through every scheduler and checks the global invariants at
// once. This complements the targeted tests with breadth: any configuration
// the generators can produce must satisfy every invariant.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/randx"
)

// propConfig is a randomized problem configuration decoded from quick's
// random bytes. Keeping fields tiny bounds the runtime.
type propConfig struct {
	Seed      uint64
	EventsSel uint8 // → 4..19 events
	TSel      uint8 // → 1..6 intervals
	CompSel   uint8 // → 0..11 competing events
	UsersSel  uint8 // → 5..36 users
	LocSel    uint8 // → 1..8 locations
	KSel      uint8 // → 1..12
	ThetaSel  uint8 // → θ ∈ {2..9}: resource tightness varies
	ZipfLike  bool  // long-tail interests instead of uniform
}

func (c propConfig) build() (*core.Instance, int) {
	r := randx.New(c.Seed)
	nE := 4 + int(c.EventsSel%16)
	nT := 1 + int(c.TSel%6)
	nC := int(c.CompSel % 12)
	nU := 5 + int(c.UsersSel%32)
	nLoc := 1 + int(c.LocSel%8)
	theta := 2 + float64(c.ThetaSel%8)
	k := 1 + int(c.KSel%12)

	events := make([]core.Event, nE)
	for i := range events {
		events[i] = core.Event{Location: r.Intn(nLoc), Resources: float64(r.IntRange(1, 3))}
	}
	competing := make([]core.Competing, nC)
	for i := range competing {
		competing[i] = core.Competing{Interval: r.Intn(nT)}
	}
	inst, err := core.NewInstance(events, make([]core.Interval, nT), competing, nU, theta)
	if err != nil {
		panic(err)
	}
	var z *randx.Zipf
	if c.ZipfLike {
		z = randx.NewZipf(50, 2)
	}
	draw := func() float64 {
		if z != nil {
			return z.Value(r)
		}
		return r.Float64()
	}
	row := make([]float32, nE+nC)
	act := make([]float32, nT)
	for u := 0; u < nU; u++ {
		for i := range row {
			row[i] = float32(draw())
		}
		inst.SetInterestRow(u, row)
		for i := range act {
			act[i] = float32(r.Float64())
		}
		inst.SetActivityRow(u, act)
	}
	return inst, k
}

// TestPropertyBattery checks, per random configuration:
//  1. every scheduler returns a feasible schedule of ≤ k assignments;
//  2. reported utility equals an independent Ω recomputation;
//  3. INC makes exactly ALG's selections with no more score evaluations;
//  4. HOR-I makes exactly HOR's selections with no more score evaluations;
//  5. every schedule passes CheckFeasible (first-principles validation).
//
// Utility ordering across methods is deliberately NOT asserted: greedy is
// only an approximation and adversarial random instances can invert the
// typical ordering (even RAND can win in principle).
func TestPropertyBattery(t *testing.T) {
	check := func(c propConfig) bool {
		inst, k := c.build()
		results := map[string]*Result{}
		for _, s := range []Scheduler{ALG{}, INC{}, HOR{}, HORI{}, TOP{}, RAND{Seed: c.Seed}} {
			res, err := s.Schedule(inst, k)
			if err != nil {
				t.Logf("%s failed: %v", s.Name(), err)
				return false
			}
			if res.Schedule.Len() > k {
				t.Logf("%s oversized schedule", s.Name())
				return false
			}
			if err := res.Schedule.CheckFeasible(); err != nil {
				t.Logf("%s infeasible: %v", s.Name(), err)
				return false
			}
			sc := core.NewScorer(inst)
			if u := sc.Utility(res.Schedule); math.Abs(u-res.Utility) > 1e-9 {
				t.Logf("%s utility mismatch: %v vs %v", s.Name(), res.Utility, u)
				return false
			}
			if res.Utility < 0 {
				t.Logf("%s negative utility", s.Name())
				return false
			}
			results[s.Name()] = res
		}
		ga, gi := results["ALG"].Schedule.Assignments(), results["INC"].Schedule.Assignments()
		if len(ga) != len(gi) {
			t.Logf("INC length differs from ALG")
			return false
		}
		for i := range ga {
			if ga[i] != gi[i] {
				t.Logf("INC selection %d differs from ALG", i)
				return false
			}
		}
		if results["INC"].ScoreEvals > results["ALG"].ScoreEvals {
			t.Logf("INC evals exceed ALG")
			return false
		}
		gh, ghi := results["HOR"].Schedule.Assignments(), results["HOR-I"].Schedule.Assignments()
		if len(gh) != len(ghi) {
			t.Logf("HOR-I length differs from HOR")
			return false
		}
		for i := range gh {
			if gh[i] != ghi[i] {
				t.Logf("HOR-I selection %d differs from HOR", i)
				return false
			}
		}
		if results["HOR-I"].ScoreEvals > results["HOR"].ScoreEvals {
			t.Logf("HOR-I evals exceed HOR")
			return false
		}
		// Note: ALG and HOR may schedule DIFFERENT numbers of events
		// when k exceeds what greedy packing reaches — their packing
		// orders strand capacity differently — so schedule sizes are
		// deliberately not compared across policies.
		return true
	}
	cfg := &quick.Config{MaxCount: 120}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// The same battery under randomized extensions (weights and costs).
func TestPropertyBatteryWithExtensions(t *testing.T) {
	check := func(c propConfig, wSel, costSel uint8) bool {
		inst, k := c.build()
		weights := make([]float64, inst.NumUsers())
		for i := range weights {
			weights[i] = float64((i+int(wSel))%4) * 0.5
		}
		costs := make([]float64, inst.NumEvents())
		for i := range costs {
			costs[i] = float64((i+int(costSel))%5) * 0.3
		}
		opts := core.ScorerOptions{UserWeights: weights, EventCost: costs}
		ra, err := (ALG{Opts: opts}).Schedule(inst, k)
		if err != nil {
			return false
		}
		ri, err := (INC{Opts: opts}).Schedule(inst, k)
		if err != nil {
			return false
		}
		ga, gi := ra.Schedule.Assignments(), ri.Schedule.Assignments()
		if len(ga) != len(gi) {
			return false
		}
		for i := range ga {
			if ga[i] != gi[i] {
				return false
			}
		}
		rh, err := (HOR{Opts: opts}).Schedule(inst, k)
		if err != nil {
			return false
		}
		rhi, err := (HORI{Opts: opts}).Schedule(inst, k)
		if err != nil {
			return false
		}
		gh, ghi := rh.Schedule.Assignments(), rhi.Schedule.Assignments()
		if len(gh) != len(ghi) {
			return false
		}
		for i := range gh {
			if gh[i] != ghi[i] {
				return false
			}
		}
		return ra.Schedule.CheckFeasible() == nil && rh.Schedule.CheckFeasible() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
