// Profit: the Section 2.1 problem extensions in one scenario — a promoter
// plans a club program where every event has an organization cost, VIP
// guests count extra, and mid-season the budget allows adding more events to
// an already-announced program.
//
// Run with: go run ./examples/profit
package main

import (
	"fmt"
	"log"

	ses "repro"
)

func main() {
	const (
		k     = 12
		users = 2000
	)
	cfg := ses.DefaultSyntheticConfig(k, users, ses.Zipf2, 77)
	cfg.NumLocations = 8
	inst, err := ses.GenerateSynthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Organization costs: pricier events at the popular end of the pool.
	costs := make([]float64, inst.NumEvents())
	for e := range costs {
		costs[e] = 5 + float64(e%7)*15
	}
	// VIP weighting: every tenth user counts five-fold (influencers).
	weights := make([]float64, users)
	for u := range weights {
		weights[u] = 1
		if u%10 == 0 {
			weights[u] = 5
		}
	}

	plain, err := ses.Solve(inst, k, ses.HORI)
	if err != nil {
		log.Fatal(err)
	}
	profit, err := ses.SolveWithOptions(inst, k, ses.HORI, ses.ScorerOptions{EventCost: costs})
	if err != nil {
		log.Fatal(err)
	}
	vip, err := ses.SolveWithOptions(inst, k, ses.HORI, ses.ScorerOptions{UserWeights: weights})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attendance-maximizing program: Ω = %9.1f\n", plain.Utility)
	fmt.Printf("profit-oriented program:       Ω = %9.1f (attendance − costs)\n", profit.Utility)
	fmt.Printf("VIP-weighted program:          Ω = %9.1f (weighted attendance)\n\n", vip.Utility)

	diff := 0
	pSet := map[int]bool{}
	for _, a := range plain.Schedule.Assignments() {
		pSet[a.Event] = true
	}
	for _, a := range profit.Schedule.Assignments() {
		if !pSet[a.Event] {
			diff++
		}
	}
	fmt.Printf("the cost model swapped %d of %d events out of the line-up\n\n", diff, k)

	// Mid-season re-planning: the announced program is immutable; the new
	// budget adds 4 more events on top, still optimizing profit.
	extended, err := ses.ExtendWithOptions(inst, profit.Schedule, 4, ses.ScorerOptions{EventCost: costs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-planning: extended the announced %d-event program to %d events, profit Ω %9.1f → %9.1f\n",
		profit.Schedule.Len(), extended.Schedule.Len(), profit.Utility, extended.Utility)
}
