// Paperfigures: prints the paper's worked artifacts straight from the
// engine — the Figure 2 (ALG) and Figure 4 (HOR) execution tables on the
// Figure 1 running example, and the Theorem 1 hardness construction with
// its certified optimum.
//
// Run with: go run ./examples/paperfigures
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hardness"
	"repro/internal/opt"
	"repro/internal/trace"
)

func main() {
	inst := core.RunningExample()

	fmt.Println("=== Figure 2: ALG on the running example (k = 3) ===")
	fmt.Println("(selected assignment bracketed; * = score updated before this step;")
	fmt.Println(" - = event already scheduled; x = infeasible. The paper prints")
	fmt.Println(" α(e1,t2) = 0.34 in row 2 — Eq. 4 gives 0.13; see DESIGN.md erratum.)")
	fmt.Println()
	ta, err := trace.ALG(inst, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ta.Render())

	fmt.Println("=== Figure 4: HOR on the running example (k = 3) ===")
	th, err := trace.HOR(inst, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(th.Render())

	fmt.Println("=== Exact optimum (branch and bound) ===")
	res, err := opt.Solve(inst, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy Ω = 1.4073 (Figure 2's schedule); true optimum Ω = %.4f: %v\n",
		res.Utility, res.Schedule)
	fmt.Println("— greedy is not optimal even on the paper's own example.")
	fmt.Println()

	fmt.Println("=== Theorem 1: 3DM-3 → SES reduction ===")
	p := hardness.PerfectInstance(2, []hardness.Triple{{X: 0, Y: 1, Z: 1}})
	red, err := hardness.Reduce(p, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3DM-3: n = %d, m = %d edges → SES: |E| = %d, |T| = %d, |U| = %d, k = %d, δ = %v\n",
		p.N, len(p.Edges), red.Inst.NumEvents(), red.Inst.NumIntervals(),
		red.Inst.NumUsers(), red.K, red.Delta)
	sched, err := red.ScheduleForMatching([]int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	sc := core.NewScorer(red.Inst)
	fmt.Printf("perfect matching {(0,0,0),(1,1,1)} → schedule %v\n", sched)
	fmt.Printf("utility = %.4f (proof predicts 3n(0.25+δ) + (m−n) = %.4f)\n",
		sc.Utility(sched), red.MatchingUtility(2))
	best, err := opt.Solve(red.Inst, red.K)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive optimum = %.4f — the matching schedule is optimal, as the reduction requires\n", best.Utility)
}
