// Worstcase: explores the HOR/HOR-I worst case w.r.t. k and |T|
// (Propositions 5 and 7): when k mod |T| = 1, the final horizontal layer
// computes scores for a full layer of assignments only to select a single
// one, maximizing wasted work.
//
// The example sweeps |T| around k and prints the score computations each
// horizontal method performs, making the k mod |T| = 1 spike visible, and
// contrasts it with INC, whose work does not depend on the k/|T| remainder.
//
// Run with: go run ./examples/worstcase
package main

import (
	"fmt"
	"log"

	ses "repro"
)

func main() {
	const (
		k     = 24
		users = 1500
	)
	fmt.Printf("k = %d scheduled events; sweeping |T| and watching the final-layer waste\n\n", k)
	fmt.Printf("%4s %10s %12s %12s %12s %14s\n", "|T|", "k mod |T|", "HOR evals", "HOR-I evals", "INC evals", "HOR-I Ω")
	for _, intervals := range []int{k/2 - 1, k / 2, k/2 + 1, k - 1, k} {
		cfg := ses.DefaultSyntheticConfig(k, users, ses.Zipf2, 99)
		cfg.NumIntervals = intervals
		inst, err := ses.GenerateSynthetic(cfg)
		if err != nil {
			log.Fatal(err)
		}
		hor, err := ses.Solve(inst, k, ses.HOR)
		if err != nil {
			log.Fatal(err)
		}
		hori, err := ses.Solve(inst, k, ses.HORI)
		if err != nil {
			log.Fatal(err)
		}
		inc, err := ses.Solve(inst, k, ses.INC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %10d %12d %12d %12d %14.1f\n",
			intervals, k%intervals, hor.ScoreEvals, hori.ScoreEvals, inc.ScoreEvals, hori.Utility)
	}
	fmt.Println("\n|T| = k−1 (k mod |T| = 1) is the worst case: the last layer scores ~|T|·|E'|")
	fmt.Println("assignments to make one selection. Even there, HOR-I's per-interval bound")
	fmt.Println("skips most of the recomputation (Figure 10a of the paper).")
}
