// Meetup: an event-based-social-network scenario — a platform operator
// (the paper's Meetup dataset) picks time slots for community events whose
// audiences are clustered by topic category.
//
// The example contrasts all four scheduling algorithms on the same
// simulated-Meetup workload and reports the solution quality and work
// trade-off, plus where each algorithm placed the five most popular events.
//
// Run with: go run ./examples/meetup
package main

import (
	"fmt"
	"log"
	"sort"

	ses "repro"
)

func main() {
	const (
		k     = 30
		users = 4000 // scaled-down from the dataset's 42,444
	)
	cfg := ses.DefaultMeetupConfig(k, users, 7)
	inst, err := ses.GenerateMeetup(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meetup workload: %d candidate events over %d slots, %d competing events, %d users\n\n",
		inst.NumEvents(), inst.NumIntervals(), inst.NumCompeting(), inst.NumUsers())

	fmt.Printf("%-6s %12s %14s %12s %10s\n", "algo", "Ω", "computations", "examined", "time")
	var schedules = map[ses.Algorithm]*ses.Result{}
	for _, a := range []ses.Algorithm{ses.ALG, ses.INC, ses.HOR, ses.HORI, ses.TOP, ses.RAND} {
		res, err := ses.Solve(inst, k, a)
		if err != nil {
			log.Fatal(err)
		}
		schedules[a] = res
		fmt.Printf("%-6s %12.1f %14d %12d %10v\n",
			a, res.Utility, res.Computations(inst.NumUsers()), res.Examined, res.Elapsed)
	}

	// The five best-attended events of the HOR-I schedule.
	rep := ses.Summarize(inst, schedules[ses.HORI].Schedule)
	sort.Slice(rep.Events, func(i, j int) bool { return rep.Events[i].Expected > rep.Events[j].Expected })
	fmt.Println("\ntop five events by expected attendance (HOR-I):")
	for _, e := range rep.Events[:5] {
		fmt.Printf("  %-12s @ %-8s expected %6.1f\n", e.Name, e.At, e.Expected)
	}

	// Greedy equivalences from the paper, observable live:
	fmt.Println()
	if schedules[ses.INC].Utility == schedules[ses.ALG].Utility {
		fmt.Println("INC returned exactly ALG's solution (Proposition 3)")
	}
	if schedules[ses.HORI].Utility == schedules[ses.HOR].Utility {
		fmt.Println("HOR-I returned exactly HOR's solution (Proposition 6)")
	}
}
