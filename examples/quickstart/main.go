// Quickstart: build a small SES instance by hand — the paper's running
// example (Figure 1) extended with explicit values — and schedule it with
// every algorithm.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A weekend program: four candidate events over two venues and a
	// room, two candidate time slots, one competing event per slot.
	events := []ses.Event{
		{Name: "rock-concert", Location: 1, Resources: 1}, // Stage 1
		{Name: "fashion-show", Location: 1, Resources: 1}, // Stage 1 too: can't share a slot
		{Name: "poetry-night", Location: 2, Resources: 1}, // Room A
		{Name: "indie-gig", Location: 3, Resources: 1},    // Stage 2
	}
	intervals := []ses.Interval{
		{Name: "fri-evening"},
		{Name: "sat-evening"},
	}
	competing := []ses.Competing{
		{Name: "city-festival", Interval: 0},
		{Name: "arena-show", Interval: 1},
	}
	inst, err := ses.NewInstance(events, intervals, competing, 2, 10)
	if err != nil {
		log.Fatal(err)
	}

	// Two users with the interest/activity profile of the paper's Figure 1d.
	type user struct {
		interests [4]float64
		competing [2]float64
		activity  [2]float64
	}
	users := []user{
		{[4]float64{0.9, 0.3, 0, 0.6}, [2]float64{0.8, 0.3}, [2]float64{0.8, 0.5}},
		{[4]float64{0.2, 0.6, 0.1, 0.6}, [2]float64{0.4, 0.7}, [2]float64{0.5, 0.7}},
	}
	for u, p := range users {
		for e, v := range p.interests {
			inst.SetInterest(u, e, v)
		}
		for c, v := range p.competing {
			inst.SetCompetingInterest(u, c, v)
		}
		for t, v := range p.activity {
			inst.SetActivity(u, t, v)
		}
	}

	// Schedule k = 3 of the 4 events with each algorithm.
	fmt.Println("scheduling 3 of 4 events:")
	for _, a := range ses.Algorithms() {
		res, err := ses.Solve(inst, 3, a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: Ω = %.4f, %d score computations, %v\n",
			a, res.Utility, res.ScoreEvals, res.Elapsed)
		fmt.Print(ses.Summarize(inst, res.Schedule))
	}
}
