// Festival: the paper's motivating scenario — a multi-stage music festival
// (the Concerts dataset) where an organizer schedules k concerts over
// sessions while nearby venues compete for the same crowd.
//
// The example generates a simulated Yahoo!-Music-style workload, schedules
// it with the fast HOR-I algorithm and the prior ALG, and shows that HOR-I
// reaches (essentially) the same expected attendance with a fraction of the
// score computations — the paper's headline result.
//
// Run with: go run ./examples/festival
package main

import (
	"fmt"
	"log"

	ses "repro"
)

func main() {
	const (
		k     = 24   // concerts to schedule
		users = 3000 // festival audience (scaled-down Concerts dataset)
	)
	cfg := ses.DefaultConcertsConfig(k, users, 2024)
	cfg.NumIntervals = 16 // fewer sessions than concerts: multi-layer scheduling
	cfg.NumLocations = 6  // six stages
	inst, err := ses.GenerateConcerts(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("festival workload: %d candidate concerts, %d sessions, %d stages, %d competing gigs, %d attendees\n\n",
		inst.NumEvents(), inst.NumIntervals(), cfg.NumLocations, inst.NumCompeting(), inst.NumUsers())

	fast, err := ses.Solve(inst, k, ses.HORI)
	if err != nil {
		log.Fatal(err)
	}
	prior, err := ses.Solve(inst, k, ses.ALG)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s Ω = %9.1f   score computations = %8d   time = %v\n",
		"HOR-I", fast.Utility, fast.ScoreEvals, fast.Elapsed)
	fmt.Printf("%-6s Ω = %9.1f   score computations = %8d   time = %v\n",
		"ALG", prior.Utility, prior.ScoreEvals, prior.Elapsed)
	fmt.Printf("\nHOR-I kept %.2f%% of ALG's attendance with %.0f%% of its computations\n\n",
		100*fast.Utility/prior.Utility,
		100*float64(fast.ScoreEvals)/float64(prior.ScoreEvals))

	fmt.Println("HOR-I line-up (first 10 slots):")
	rep := ses.Summarize(inst, fast.Schedule)
	for i, e := range rep.Events {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(rep.Events)-10)
			break
		}
		fmt.Printf("  %-12s @ %-10s expected crowd %7.1f\n", e.Name, e.At, e.Expected)
	}
}
