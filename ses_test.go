package ses

import (
	"math"
	"strings"
	"testing"
)

func TestSolveRunningExample(t *testing.T) {
	inst := RunningExample()
	for _, a := range []Algorithm{ALG, INC, HOR, HORI} {
		res, err := Solve(inst, 3, a)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if math.Abs(res.Utility-1.407302) > 5e-4 {
			t.Errorf("%s: utility %.6f, want 1.407302", a, res.Utility)
		}
		if res.Schedule.Len() != 3 {
			t.Errorf("%s: %d assignments, want 3", a, res.Schedule.Len())
		}
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	if _, err := Solve(RunningExample(), 1, Algorithm("nope")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmsOrder(t *testing.T) {
	want := []Algorithm{ALG, INC, HOR, HORI, TOP, RAND}
	got := Algorithms()
	if len(got) != len(want) {
		t.Fatalf("Algorithms() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Algorithms()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNewSchedulerNames(t *testing.T) {
	for _, a := range Algorithms() {
		s, err := NewScheduler(a, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != string(a) {
			t.Errorf("scheduler for %v reports name %q", a, s.Name())
		}
	}
}

func TestGenerateSynthetic(t *testing.T) {
	inst, err := GenerateSynthetic(DefaultSyntheticConfig(6, 20, Uniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(inst, 6, HORI)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Len() != 6 {
		t.Errorf("scheduled %d events, want 6", res.Schedule.Len())
	}
}

func TestGenerateMeetupAndConcerts(t *testing.T) {
	m, err := GenerateMeetup(DefaultMeetupConfig(4, 15, 2))
	if err != nil {
		t.Fatal(err)
	}
	c, err := GenerateConcerts(DefaultConcertsConfig(4, 15, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range []*Instance{m, c} {
		if _, err := Solve(inst, 4, INC); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSummarize(t *testing.T) {
	inst := RunningExample()
	res, err := Solve(inst, 3, ALG)
	if err != nil {
		t.Fatal(err)
	}
	rep := Summarize(inst, res.Schedule)
	if math.Abs(rep.Utility-res.Utility) > 1e-9 {
		t.Errorf("report utility %v, result utility %v", rep.Utility, res.Utility)
	}
	if len(rep.Events) != 3 {
		t.Fatalf("report has %d events", len(rep.Events))
	}
	sum := 0.0
	for _, e := range rep.Events {
		sum += e.Expected
	}
	if math.Abs(sum-rep.Utility) > 1e-9 {
		t.Errorf("per-event attendances sum to %v, utility is %v", sum, rep.Utility)
	}
	s := rep.String()
	for _, frag := range []string{"e4", "t2", "Ω"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report string missing %q:\n%s", frag, s)
		}
	}
}

func TestManualScheduleViaFacade(t *testing.T) {
	inst := RunningExample()
	s := NewSchedule(inst)
	if err := s.Assign(3, 1); err != nil {
		t.Fatal(err)
	}
	sc := NewScorer(inst)
	if u := sc.Utility(s); math.Abs(u-0.656410) > 5e-4 {
		t.Errorf("manual schedule utility %v, want 0.656410", u)
	}
}

func TestSolveWithOptionsProfit(t *testing.T) {
	inst := RunningExample()
	plain, err := Solve(inst, 3, ALG)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveWithOptions(inst, 3, ALG, ScorerOptions{
		EventCost: []float64{0.1, 0.1, 0.1, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := plain.Utility - 0.3 // same schedule, three events at 0.1 each
	if math.Abs(res.Utility-want) > 1e-6 {
		t.Errorf("profit utility = %v, want %v", res.Utility, want)
	}
	if _, err := SolveWithOptions(inst, 3, ALG, ScorerOptions{EventCost: []float64{1}}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestSolveWithOptionsWeights(t *testing.T) {
	inst := RunningExample()
	// Count only user 0: all algorithms should optimize for u1 alone.
	res, err := SolveWithOptions(inst, 1, ALG, ScorerOptions{UserWeights: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// u1's best single assignment is e1@t1 (0.8·0.9/1.7 = 0.4235), beating
	// e4@t2 (0.3333) that the unweighted greedy picks first.
	a := res.Schedule.Assignments()[0]
	if a.Event != 0 || a.Interval != 0 {
		t.Errorf("weighted greedy picked %+v, want e1@t1", a)
	}
}

func TestExtendFacade(t *testing.T) {
	inst := RunningExample()
	base := NewSchedule(inst)
	if err := base.Assign(3, 1); err != nil { // e4 @ t2, greedy's own first pick
		t.Fatal(err)
	}
	res, err := Extend(inst, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := Solve(inst, 3, ALG)
	if math.Abs(res.Utility-full.Utility) > 1e-9 {
		t.Errorf("extended utility %v, ALG %v", res.Utility, full.Utility)
	}
	if base.Len() != 1 {
		t.Error("base schedule mutated")
	}
}

func TestExtendWithOptionsConsistentObjective(t *testing.T) {
	inst := RunningExample()
	costs := []float64{0.1, 0.1, 0.1, 0.1}
	opts := ScorerOptions{EventCost: costs}
	full, err := SolveWithOptions(inst, 3, ALG, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := NewSchedule(inst)
	first := full.Schedule.Assignments()[0]
	if err := base.Assign(first.Event, first.Interval); err != nil {
		t.Fatal(err)
	}
	ext, err := ExtendWithOptions(inst, base, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ext.Utility-full.Utility) > 1e-9 {
		t.Errorf("extended profit %v, full profit %v", ext.Utility, full.Utility)
	}
}
